//! The asynchronous replicated-write pipeline
//! (`ClusterConfig::opt_write_pipeline`): acknowledgement semantics,
//! batching, safety-path synchrony, and holder-crash recovery.

use deceit_core::{
    Cluster, ClusterConfig, FileParams, ProtocolHost, ReplicaState, SegmentId, WriteOp,
};
use deceit_net::NodeId;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// A 3-server pipelined cell with one segment replicated 3×, settled.
fn pipelined_cell(params: FileParams) -> (Cluster, SegmentId) {
    let mut c = Cluster::new(3, ClusterConfig::deterministic().with_write_pipeline());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, params).unwrap();
    c.run_until_quiet();
    c.write(n(0), seg, WriteOp::replace(b"initial"), None).unwrap();
    c.run_until_quiet();
    (c, seg)
}

/// An ack means: durable at the token holder, not yet at the group. The
/// pump's drain then converges every replica.
#[test]
fn ack_is_local_durability_and_pump_converges_replicas() {
    let (mut c, seg) =
        pipelined_cell(FileParams { min_replicas: 3, stability: false, ..FileParams::default() });
    let key = (seg, 0u64);

    c.write(n(0), seg, WriteOp::replace(b"pipelined"), None).unwrap();

    // Holder: applied, and durable (write-through at safety 1).
    let holder = c.server(n(0)).replicas.get(&key).unwrap();
    assert_eq!(&holder.data.contents()[..], b"pipelined");

    // Replicas: still the old contents — propagation is deferred work.
    for s in [n(1), n(2)] {
        let r = c.server(s).replicas.get(&key).unwrap();
        assert_eq!(&r.data.contents()[..], b"initial", "replica at {s} applied early");
    }
    assert!(c.pending_events() > 0, "a propagate drain must be queued");

    // Drain: everyone converges on the holder's version.
    c.run_until_quiet();
    let holder_sub = c.server(n(0)).replicas.get(&key).unwrap().version.sub;
    for s in [n(0), n(1), n(2)] {
        let r = c.server(s).replicas.get(&key).unwrap();
        assert_eq!(&r.data.contents()[..], b"pipelined");
        assert_eq!(r.version.sub, holder_sub);
    }
}

/// Consecutive updates to the same file ride one batched broadcast: a
/// whole stream drains in far fewer "update" rounds than writes.
#[test]
fn consecutive_updates_batch_into_one_message() {
    let (mut c, seg) =
        pipelined_cell(FileParams { min_replicas: 3, stability: false, ..FileParams::default() });
    let msgs_before = c.net.stats().tag_count("update");
    for i in 0..16 {
        c.write(n(0), seg, WriteOp::append(format!("w{i}").as_bytes()), None).unwrap();
    }
    c.run_until_quiet();
    // Each round is 4 messages (2 members × request+reply). Drains fire
    // as the stream's writes advance the clock past the lazy-apply
    // delay, so several writes amortize into each round — strictly
    // fewer rounds than the eager one-per-write.
    let rounds = (c.net.stats().tag_count("update") - msgs_before) / 4;
    assert!(rounds <= 8, "16 writes must amortize into fewer update rounds, took {rounds}");
    assert!(c.stats.counter("core/pipeline/batches") >= 1);
    assert!(c.stats.counter("core/pipeline/batched_updates") >= 16);
    // And the batch applied in order, byte for byte.
    let key = (seg, 0u64);
    let expect: Vec<u8> = b"initial"
        .iter()
        .copied()
        .chain((0..16).flat_map(|i| format!("w{i}").into_bytes()))
        .collect();
    for s in [n(1), n(2)] {
        assert_eq!(c.server(s).replicas.get(&key).unwrap().data.contents()[..], expect[..]);
    }
}

/// write_safety ≥ 2 keeps its synchronous guarantee through the
/// pipeline: the safety replica has applied (durably) when the write
/// returns, while the remaining replica still lags.
#[test]
fn safety_replicas_stay_synchronous() {
    let (mut c, seg) = pipelined_cell(FileParams {
        min_replicas: 3,
        write_safety: 2,
        stability: false,
        ..FileParams::default()
    });
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"safe at two"), None).unwrap();

    let applied: Vec<bool> = [n(1), n(2)]
        .iter()
        .map(|&s| &c.server(s).replicas.get(&key).unwrap().data.contents()[..] == b"safe at two")
        .collect();
    assert_eq!(
        applied.iter().filter(|&&a| a).count(),
        1,
        "exactly one remote replica is on the synchronous safety path: {applied:?}"
    );
    c.run_until_quiet();
    for s in [n(1), n(2)] {
        assert_eq!(&c.server(s).replicas.get(&key).unwrap().data.contents()[..], b"safe at two");
    }
}

/// Stability notification still masks the propagation window: during the
/// stream the lagging replicas are unstable, so reads forward to the
/// holder and no client ever observes a version behind the ack.
#[test]
fn reads_never_observe_pre_ack_state_with_stability() {
    let (mut c, seg) = pipelined_cell(FileParams { min_replicas: 3, ..FileParams::default() });
    c.write(n(0), seg, WriteOp::replace(b"acked"), None).unwrap();
    let key = (seg, 0u64);
    assert_eq!(
        c.server(n(1)).replicas.get(&key).unwrap().state,
        ReplicaState::Unstable,
        "stream members must be marked unstable before the first buffered update"
    );
    // A read via the lagging replica forwards to the holder (§3.4).
    let r = c.read(n(1), seg, None, 0, 64).unwrap().value;
    assert_eq!(&r.data[..], b"acked");
    c.run_until_quiet();
    let r = c.read(n(1), seg, None, 0, 64).unwrap().value;
    assert_eq!(&r.data[..], b"acked");
}

/// Crash of the token holder mid-stream: the buffered (acked but
/// unpropagated) updates are lost from the buffer, but the holder's own
/// durable copy carries them — recovery regenerates the group from the
/// primary instead of leaving replicas waiting on updates that no longer
/// exist, and nothing panics.
#[test]
fn holder_crash_mid_stream_recovers_via_regeneration() {
    let (mut c, seg) = pipelined_cell(FileParams { min_replicas: 3, ..FileParams::default() });
    let key = (seg, 0u64);

    // Acked writes whose propagation is still buffered.
    c.write(n(0), seg, WriteOp::replace(b"acked-then-crashed"), None).unwrap();
    c.write(n(0), seg, WriteOp::append(b" twice"), None).unwrap();
    assert_eq!(
        &c.server(n(1)).replicas.get(&key).unwrap().data.contents()[..],
        b"initial",
        "updates must still be buffered when the crash lands"
    );

    c.crash_server(n(0));
    c.recover_server(n(0));
    c.run_until_quiet();

    // The acked updates survived at the primary and the group was
    // regenerated from it: every replica converges, stable again.
    for s in [n(0), n(1), n(2)] {
        let r = c.server(s).replicas.get(&key).unwrap();
        assert_eq!(&r.data.contents()[..], b"acked-then-crashed twice", "diverged at {s}");
        assert_eq!(r.state, ReplicaState::Stable);
    }
    // And the file is writable again through the recovered holder.
    c.write(n(0), seg, WriteOp::append(b", and alive"), None).unwrap();
    c.run_until_quiet();
    let r = c.read(n(2), seg, None, 0, 128).unwrap().value;
    assert_eq!(&r.data[..], b"acked-then-crashed twice, and alive");
}

/// Crash of a *replica* mid-stream: it misses the batch, recovers behind
/// the token, and the §3.1 path destroys-and-regenerates it.
#[test]
fn replica_crash_mid_stream_regenerates() {
    let (mut c, seg) = pipelined_cell(FileParams { min_replicas: 3, ..FileParams::default() });
    let key = (seg, 0u64);
    c.crash_server(n(2));
    c.write(n(0), seg, WriteOp::replace(b"while two was down"), None).unwrap();
    c.run_until_quiet();
    c.recover_server(n(2));
    c.run_until_quiet();
    let r = c.server(n(2)).replicas.get(&key).expect("regenerated");
    assert_eq!(&r.data.contents()[..], b"while two was down");
    assert_eq!(c.locate_replicas(n(0), seg).unwrap().value.len(), 3);
}

/// The pipeline keeps the ProtocolHost seam honest: buffered propagation
/// is pending work, drained by the per-shard pump under shared access —
/// but only once the protocol clock reaches the drain's batching window
/// (a drain fired the instant it is queued would make every batch one
/// update).
#[test]
fn pump_drains_buffered_propagation_per_shard() {
    let (mut c, seg) =
        pipelined_cell(FileParams { min_replicas: 3, stability: false, ..FileParams::default() });
    c.write(n(0), seg, WriteOp::replace(b"pumped"), None).unwrap();
    let slot = c.slot_of(seg);
    let key = (seg, 0u64);

    // Inside the batching window the drain is parked: the ready mask
    // keeps the pump off the slot entirely, and a pump pass that does
    // land there fires nothing.
    assert_eq!(c.pending_shard_mask() & (1 << slot), 0, "parked drain must not draw the pump");
    assert!(c.pending_events() > 0, "the drain is still pending work");
    assert_eq!(ProtocolHost::try_pump_shard(&c, slot, 8), Some(0));
    assert_eq!(&c.server(n(1)).replicas.get(&key).unwrap().data.contents()[..], b"initial");

    // The rest of the cell's traffic advances the shared clock past the
    // window (scoped to no slots, so nothing fires on the way); the pump
    // then ships the batch under the slot's own locks.
    c.advance_sharded(&[], c.cfg.lazy_apply_delay + c.cfg.lazy_apply_delay);
    assert!(c.pending_shard_mask() & (1 << slot) != 0, "due drain must surface in the mask");
    let mut fired = 0;
    loop {
        let pass = ProtocolHost::try_pump_shard(&c, slot, 8).unwrap();
        if pass == 0 {
            break;
        }
        fired += pass;
    }
    assert!(fired > 0);
    for s in [n(1), n(2)] {
        assert_eq!(&c.server(s).replicas.get(&key).unwrap().data.contents()[..], b"pumped");
    }
}
