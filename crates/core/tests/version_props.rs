//! Property tests of the §3.5 history tree: version pairs, branch
//! records, and the ancestor relation.

use deceit_core::{BranchTable, VersionPair, VersionRelation};
use proptest::prelude::*;

/// Builds a random but well-formed branch table: each new major branches
/// from a pair on an existing major, and majors increase monotonically —
/// exactly the allocator discipline of the cluster.
fn arb_tree() -> impl Strategy<Value = (BranchTable, Vec<u64>)> {
    proptest::collection::vec((0usize..8, 0u64..6), 0..8).prop_map(|branches| {
        let mut table = BranchTable::new();
        let mut majors = vec![0u64];
        for (i, (parent_idx, parent_sub)) in branches.into_iter().enumerate() {
            let next_major = (i + 1) as u64;
            let parent_major = majors[parent_idx % majors.len()];
            table.record_branch(next_major, VersionPair { major: parent_major, sub: parent_sub });
            majors.push(next_major);
        }
        (table, majors)
    })
}

proptest! {
    /// The relation is a partial order: reflexive-equal, antisymmetric,
    /// and mirror-consistent.
    #[test]
    fn relation_is_consistent((table, majors) in arb_tree(), subs in proptest::collection::vec((0usize..9, 0u64..8), 2)) {
        let a = VersionPair { major: majors[subs[0].0 % majors.len()], sub: subs[0].1 };
        let b = VersionPair { major: majors[subs[1].0 % majors.len()], sub: subs[1].1 };
        prop_assert_eq!(table.relation(a, a), VersionRelation::Equal);
        match table.relation(a, b) {
            VersionRelation::Equal => prop_assert_eq!(a, b),
            VersionRelation::Ancestor => {
                prop_assert_eq!(table.relation(b, a), VersionRelation::Descendant);
                prop_assert!(table.is_ancestor(a, b));
                prop_assert!(!table.is_ancestor(b, a), "antisymmetry");
            }
            VersionRelation::Descendant => {
                prop_assert_eq!(table.relation(b, a), VersionRelation::Ancestor);
            }
            VersionRelation::Incomparable => {
                prop_assert_eq!(table.relation(b, a), VersionRelation::Incomparable);
            }
        }
    }

    /// Ancestry is transitive along any lineage.
    #[test]
    fn ancestor_transitive((table, majors) in arb_tree(), picks in proptest::collection::vec((0usize..9, 0u64..8), 3)) {
        let v: Vec<VersionPair> = picks
            .iter()
            .map(|(i, sub)| VersionPair { major: majors[i % majors.len()], sub: *sub })
            .collect();
        if table.is_ancestor(v[0], v[1]) && table.is_ancestor(v[1], v[2]) {
            let chain = format!("{} < {} < {}", v[0], v[1], v[2]);
            prop_assert!(table.is_ancestor(v[0], v[2]), "transitivity: {}", chain);
        }
    }

    /// Every recorded branch point is an ancestor of every pair on the
    /// child major, and within one major ancestry is exactly sub-ordering.
    #[test]
    fn branch_points_are_ancestors((table, majors) in arb_tree(), sub in 0u64..8) {
        for (child, parent) in table.entries().collect::<Vec<_>>() {
            let child_pair = VersionPair { major: child, sub };
            let is_anc = table.is_ancestor(parent, child_pair);
            prop_assert!(is_anc, "{} should precede {}", parent, child_pair);
        }
        for &m in &majors {
            let lo = VersionPair { major: m, sub };
            let hi = VersionPair { major: m, sub: sub + 1 };
            let fwd = table.is_ancestor(lo, hi);
            let back = table.is_ancestor(hi, lo);
            prop_assert!(fwd && !back, "sub ordering within major {}", m);
        }
    }

    /// The lineage of any pair terminates and starts at the pair itself.
    #[test]
    fn lineage_terminates((table, majors) in arb_tree(), pick in (0usize..9, 0u64..8)) {
        let v = VersionPair { major: majors[pick.0 % majors.len()], sub: pick.1 };
        let lineage = table.lineage(v);
        prop_assert_eq!(lineage[0], v);
        prop_assert!(lineage.len() <= majors.len() + 1);
        // Majors strictly decrease along the lineage.
        for w in lineage.windows(2) {
            prop_assert!(w[1].major < w[0].major);
        }
    }
}
