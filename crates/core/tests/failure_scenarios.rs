//! The §3.6 crash and partition scenarios, plus the §4 availability-policy
//! matrix. Each test reproduces one of the paper's narrated failure cases.

use deceit_core::{
    Cluster, ClusterConfig, DeceitError, FileParams, ProtocolEvent, WriteAvailability, WriteOp,
};
use deceit_net::NodeId;
use deceit_sim::SimDuration;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// A cluster with one segment replicated on the first `replicas` servers.
fn replicated_cluster(
    servers: usize,
    replicas: usize,
    availability: WriteAvailability,
) -> (Cluster, deceit_core::SegmentId) {
    let mut c = Cluster::new(servers, ClusterConfig::deterministic());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(
        n(0),
        seg,
        FileParams { min_replicas: replicas, availability, ..FileParams::default() },
    )
    .unwrap();
    c.write(n(0), seg, WriteOp::replace(b"initial"), None).unwrap();
    c.run_until_quiet();
    assert_eq!(c.locate_replicas(n(0), seg).unwrap().value.len(), replicas);
    (c, seg)
}

// ---------------------------------------------------------------------
// §3.6 "Non-token Replica Crash"
// ---------------------------------------------------------------------

#[test]
fn non_token_replica_crash_destroys_obsolete_copy_on_recovery() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    // Server 2 (a plain replica holder) crashes; updates continue.
    c.crash_server(n(2));
    c.write(n(0), seg, WriteOp::replace(b"updated while 2 down"), None).unwrap();
    c.run_until_quiet();
    // On recovery, server 2 contacts the token holder, finds its replica
    // obsolete (its history is a prefix of the token's) and destroys it.
    c.recover_server(n(2));
    assert!(!c.server(n(2)).replicas.contains(&(seg, 0)), "obsolete replica destroyed");
    assert!(c.stats.counter("core/recovery/replicas_destroyed") >= 1);
    // The holder regenerates to restore the minimum replica level; no
    // update was lost.
    c.run_until_quiet();
    assert_eq!(c.locate_replicas(n(0), seg).unwrap().value.len(), 3);
    let r = c.read(n(2), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"updated while 2 down");
}

#[test]
fn up_to_date_replica_rejoins_after_crash() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    c.crash_server(n(2));
    // No updates while down: the replica is still current on recovery.
    c.recover_server(n(2));
    assert!(c.server(n(2)).replicas.contains(&(seg, 0)), "current replica kept");
    let r = c.read(n(2), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"initial");
    assert_eq!(r.served_by, n(2));
}

// ---------------------------------------------------------------------
// §3.6 "Token Crash"
// ---------------------------------------------------------------------

#[test]
fn token_crash_generates_new_version_and_recovery_destroys_old() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    assert!(c.server(n(0)).holds_token((seg, 0)));
    c.crash_server(n(0));
    // A write via server 1 cannot contact the holder; with a majority of
    // replicas reachable it generates a new token (new major version).
    let v = c.write(n(1), seg, WriteOp::replace(b"post-crash"), None).unwrap().value;
    assert_ne!(v.major, 0, "a new major version was created");
    assert!(c.server(n(1)).holds_token((seg, v.major)));
    c.run_until_quiet();
    // The old holder recovers, learns of the descendant version, and
    // destroys the old version and its replicas.
    c.recover_server(n(0));
    assert!(!c.server(n(0)).holds_token((seg, 0)), "old token destroyed");
    assert!(!c.server(n(0)).replicas.contains(&(seg, 0)), "old replica destroyed");
    c.run_until_quiet();
    let r = c.read(n(0), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"post-crash");
    assert_eq!(r.version.major, v.major);
    assert!(c.conflicts.is_empty(), "a clean succession is not a conflict");
}

#[test]
fn availability_low_refuses_new_tokens() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Low);
    c.crash_server(n(0));
    // §4: "low … prevents the production of additional tokens. Loss of
    // file write access may be frequent and long term, but there is no
    // chance of generation of multiple versions."
    let err = c.write(n(1), seg, WriteOp::replace(b"nope"), None).unwrap_err();
    assert!(matches!(err, DeceitError::WriteUnavailable(_)));
    // Reads still work.
    let r = c.read(n(1), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"initial");
    // When the holder recovers, writes resume with no divergence.
    c.recover_server(n(0));
    c.write(n(1), seg, WriteOp::replace(b"resumed"), None).unwrap();
    assert_eq!(c.list_versions(n(1), seg).unwrap().value.len(), 1);
}

#[test]
fn availability_medium_blocks_minority_side_holder() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    // Holder alone on the minority side.
    c.split(&[&[n(0)], &[n(1), n(2)]]);
    let err = c.write(n(0), seg, WriteOp::replace(b"minority"), None).unwrap_err();
    assert!(
        matches!(err, DeceitError::WriteUnavailable(_)),
        "medium disables the token without a majority"
    );
    // The majority side can generate a fresh token and write.
    let v = c.write(n(1), seg, WriteOp::replace(b"majority"), None).unwrap().value;
    assert_ne!(v.major, 0);
    // Heal: the sides reconcile; the untouched old version is destroyed
    // ("It will appear to the clients as if the token had actually been
    // moved").
    c.heal();
    c.run_until_quiet();
    assert!(c.conflicts.is_empty(), "no concurrent updates, no conflict");
    let r = c.read(n(0), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"majority");
}

#[test]
fn availability_medium_prevents_split_brain() {
    let (mut c, seg) = replicated_cluster(5, 5, WriteAvailability::Medium);
    c.split(&[&[n(0), n(1)], &[n(2), n(3), n(4)]]);
    // Minority side (with the token) is refused.
    assert!(c.write(n(0), seg, WriteOp::replace(b"a"), None).is_err());
    // Majority side succeeds.
    assert!(c.write(n(2), seg, WriteOp::replace(b"b"), None).is_ok());
    c.heal();
    c.run_until_quiet();
    // At most one lineage survives: never two divergent writable versions.
    assert!(c.conflicts.is_empty());
    let versions = c.list_versions(n(0), seg).unwrap().value;
    assert_eq!(versions.len(), 1, "exactly one live version after heal");
}

// ---------------------------------------------------------------------
// §3.6 "Partition" — the hard case: concurrent updates on both sides
// ---------------------------------------------------------------------

#[test]
fn partition_with_updates_on_both_sides_logs_conflict_and_keeps_both() {
    let (mut c, seg) = replicated_cluster(4, 4, WriteAvailability::High);
    c.split(&[&[n(0), n(1)], &[n(2), n(3)]]);
    // Both sides write concurrently.
    let va = c.write(n(0), seg, WriteOp::replace(b"side A"), None).unwrap().value;
    let vb = c.write(n(2), seg, WriteOp::replace(b"side B"), None).unwrap().value;
    assert_ne!(va.major, vb.major, "side B generated a new version");
    c.heal();
    c.run_until_quiet();
    // §3.6: "both of the incomparable versions of the file are kept, and a
    // notification is logged into a well known file."
    assert_eq!(c.conflicts.len(), 1);
    assert!(c.trace.events().iter().any(|e| matches!(e, ProtocolEvent::ConflictLogged { .. })));
    let versions = c.list_versions(n(0), seg).unwrap().value;
    assert_eq!(versions.len(), 2, "both versions available to the user");
    // Both versions are independently readable by qualified name.
    let a = c.read(n(1), seg, Some(va.major), 0, 100).unwrap().value;
    let b = c.read(n(1), seg, Some(vb.major), 0, 100).unwrap().value;
    assert_eq!(&a.data[..], b"side A");
    assert_eq!(&b.data[..], b"side B");
    // The user resolves by deleting one version; the conflict clears.
    c.delete_version(n(0), seg, va.major).unwrap();
    assert!(c.conflicts.is_empty());
    assert_eq!(c.list_versions(n(0), seg).unwrap().value.len(), 1);
}

#[test]
fn partition_without_remote_updates_resolves_silently() {
    let (mut c, seg) = replicated_cluster(4, 4, WriteAvailability::High);
    c.split(&[&[n(0), n(1)], &[n(2), n(3)]]);
    // Reads continue on the token side.
    let r = c.read(n(0), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"initial");
    // Token side writes; the other side stays quiet.
    c.write(n(0), seg, WriteOp::replace(b"token side"), None).unwrap();
    c.heal();
    c.run_until_quiet();
    assert!(c.conflicts.is_empty());
    let r = c.read(n(3), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"token side");
}

// ---------------------------------------------------------------------
// §3.6 "Stability Notification in the Presence of Failure"
// ---------------------------------------------------------------------

#[test]
fn stable_replica_search_after_holder_failure() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    // Server 2 is partitioned away and misses an update; replicas 0 and 1
    // are marked unstable for the stream.
    c.split(&[&[n(0), n(1)], &[n(2)]]);
    c.write(n(0), seg, WriteOp::replace(b"newer"), None).unwrap();
    // The holder crashes mid-stream, before marking the group stable.
    c.crash_server(n(0));
    c.heal();
    // A read at server 2 finds its replica unstable and the holder
    // unreachable: it broadcasts a state inquiry, forces the most
    // up-to-date replica stable, and destroys obsolete ones (§3.6).
    c.advance(SimDuration::from_millis(200));
    let r = c.read(n(2), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"newer", "read served from the most up-to-date replica");
    assert!(c.stats.counter("core/reads/stable_search") >= 1);
    assert!(
        !c.server(n(2)).replicas.contains(&(seg, 0)),
        "the stale missed-update replica was destroyed"
    );
}

// ---------------------------------------------------------------------
// §3.6 "Disastrous Failure" — the acknowledged impossibility
// ---------------------------------------------------------------------

#[test]
fn disastrous_failure_file_goes_back_in_time() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::High);
    // Server 2 crashes and misses updates.
    c.crash_server(n(2));
    c.write(n(0), seg, WriteOp::replace(b"the future"), None).unwrap();
    c.run_until_quiet();
    // Then every other replica crashes and only the obsolete one recovers.
    c.crash_server(n(0));
    c.crash_server(n(1));
    c.recover_server(n(2));
    let r = c.read(n(2), seg, None, 0, 100).unwrap().value;
    // The paper: "if an obsolete file replica recovers and all other
    // replicas simultaneously crash, the file will appear to go back in
    // time." We reproduce the admitted weakness faithfully.
    assert_eq!(&r.data[..], b"initial");
}

// ---------------------------------------------------------------------
// §4 write safety — durability exposure
// ---------------------------------------------------------------------

#[test]
fn write_safety_zero_loses_update_on_immediate_crash() {
    let mut c = Cluster::new(1, ClusterConfig::deterministic());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(
        n(0),
        seg,
        FileParams { write_safety: 0, stability: false, ..FileParams::default() },
    )
    .unwrap();
    c.run_until_quiet();
    c.write(n(0), seg, WriteOp::replace(b"durable base"), None).unwrap();
    c.run_until_quiet(); // flushed
    c.write(n(0), seg, WriteOp::replace(b"lost on crash"), None).unwrap();
    c.crash_server(n(0)); // before the write-behind flush fires
    c.recover_server(n(0));
    let r = c.read(n(0), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"durable base", "asynchronous unsafe write lost");
}

#[test]
fn write_safety_one_survives_immediate_crash() {
    let mut c = Cluster::new(1, ClusterConfig::deterministic());
    let seg = c.create(n(0)).unwrap().value;
    c.write(n(0), seg, WriteOp::replace(b"safe"), None).unwrap();
    c.crash_server(n(0));
    c.recover_server(n(0));
    let r = c.read(n(0), seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"safe", "safety 1 is durable at the primary on return");
}

#[test]
fn reads_fail_over_when_no_replica_reachable() {
    let (mut c, seg) = replicated_cluster(4, 2, WriteAvailability::Medium);
    let holders = c.locate_replicas(n(0), seg).unwrap().value;
    for h in &holders {
        c.crash_server(*h);
    }
    // A server outside the replica set cannot satisfy the read.
    let outside = c.server_ids().into_iter().find(|s| !holders.contains(s)).unwrap();
    assert!(matches!(
        c.read(outside, seg, None, 0, 10),
        Err(DeceitError::NoSuchSegment(_)) | Err(DeceitError::Unavailable(_))
    ));
    // One replica holder recovers: service resumes.
    c.recover_server(holders[0]);
    let r = c.read(outside, seg, None, 0, 100).unwrap().value;
    assert_eq!(&r.data[..], b"initial");
}

#[test]
fn deleted_segment_garbage_collected_at_recovery() {
    let (mut c, seg) = replicated_cluster(3, 3, WriteAvailability::Medium);
    c.crash_server(n(2));
    c.delete(n(0), seg).unwrap();
    c.recover_server(n(2));
    assert!(
        !c.server(n(2)).has_segment(seg),
        "stale replica of a deleted segment is garbage-collected"
    );
}
