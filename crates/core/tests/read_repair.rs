//! Holder-local read leases (`ClusterConfig::opt_read_leases`) and
//! targeted read-repair (`ClusterConfig::opt_read_repair`): the two
//! mechanisms that recover the lock-free read path for files under
//! active write streams — plus regression coverage for the
//! forced-stabilize replica selection of §3.6.

use deceit_core::{
    Cluster, ClusterConfig, FileParams, Replica, ReplicaState, SegmentId, VersionPair, WriteOp,
};
use deceit_net::NodeId;
use deceit_sim::SimTime;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// A 3-server cell with the live runtime's read optimizations on
/// (pipeline + leases + repair), one segment replicated 3×, settled.
fn leased_cell() -> (Cluster, SegmentId) {
    let cfg =
        ClusterConfig::deterministic().with_write_pipeline().with_read_leases().with_read_repair();
    let mut c = Cluster::new(3, cfg);
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, FileParams { min_replicas: 3, ..FileParams::default() }).unwrap();
    c.run_until_quiet();
    c.write(n(0), seg, WriteOp::replace(b"initial"), None).unwrap();
    c.run_until_quiet();
    (c, seg)
}

// ---------------------------------------------------------------------
// Holder-local read leases
// ---------------------------------------------------------------------

/// During a write stream the token holder's replica is unstable, yet the
/// lock-free fast path serves it — against the published lease, at the
/// acked durable prefix, byte-for-byte what the full read path returns.
/// Non-holders still decline (their reads must forward, §3.4).
#[test]
fn lease_serves_holders_unstable_file_lock_free() {
    let (mut c, seg) = leased_cell();
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"mid-stream state"), None).unwrap();

    // The stream is active: the holder's replica is unstable and the
    // lease names exactly the acked version.
    let holder = c.server(n(0)).replicas.get(&key).unwrap();
    assert_eq!(holder.state, ReplicaState::Unstable);
    assert_eq!(c.read_lease_version(n(0), key), Some(holder.version));

    let fast = c.try_read_local(n(0), seg, None, 0, 64).expect("lease must serve the holder");
    assert_eq!(&fast.value.data[..], b"mid-stream state");
    assert_eq!(fast.value.version, holder.version);

    // Non-holders have no lease and an unstable replica: decline.
    assert!(c.try_read_local(n(1), seg, None, 0, 64).is_none());
    assert!(c.try_read_local(n(2), seg, None, 0, 64).is_none());

    // The full (exclusive) path agrees byte for byte.
    let slow = c.read(n(0), seg, None, 0, 64).unwrap();
    assert_eq!(fast.value.data, slow.value.data);
}

/// The lease is strictly opt-in: with the paper-faithful default, the
/// fast path declines the holder's unstable file exactly as before.
#[test]
fn lease_requires_opt_in() {
    let mut c = Cluster::new(3, ClusterConfig::deterministic().with_write_pipeline());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, FileParams { min_replicas: 3, ..FileParams::default() }).unwrap();
    c.run_until_quiet();
    c.write(n(0), seg, WriteOp::replace(b"no lease"), None).unwrap();
    assert_eq!(c.read_lease_version(n(0), (seg, 0)), None);
    assert!(c.try_read_local(n(0), seg, None, 0, 64).is_none());
}

/// Every lease-served read observes exactly the acked prefix of the
/// stream: after each acked write, the fast path returns precisely the
/// bytes acked so far — never a torn or stale intermediate.
#[test]
fn reads_during_stream_return_only_acked_prefixes() {
    let (mut c, seg) = leased_cell();
    let mut expect = b"initial".to_vec();
    for i in 0..12 {
        let chunk = format!("[w{i}]").into_bytes();
        c.write(n(0), seg, WriteOp::append(&chunk), None).unwrap();
        expect.extend_from_slice(&chunk);
        let read = c.try_read_local(n(0), seg, None, 0, 4096).expect("lease serves the stream");
        assert_eq!(
            read.value.data.to_vec(),
            expect,
            "read after write {i} is not the acked prefix"
        );
    }
}

/// Stabilize retires the lease: once the stream goes quiet and the group
/// is marked stable, the lease is gone and the ordinary stable path
/// serves every replica.
#[test]
fn lease_invalidated_on_stabilize() {
    let (mut c, seg) = leased_cell();
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"quiet soon"), None).unwrap();
    assert!(c.read_lease_version(n(0), key).is_some());

    c.run_until_quiet();
    assert_eq!(c.read_lease_version(n(0), key), None, "stabilize must retire the lease");
    for s in [n(0), n(1), n(2)] {
        assert_eq!(c.server(s).replicas.get(&key).unwrap().state, ReplicaState::Stable);
        let read = c.try_read_local(s, seg, None, 0, 64).expect("stable path serves");
        assert_eq!(&read.value.data[..], b"quiet soon");
    }
}

/// Token movement revokes the lease at the old holder before the token
/// leaves, and the new holder publishes its own on its next write.
#[test]
fn lease_invalidated_on_token_movement() {
    let (mut c, seg) = leased_cell();
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"holder zero"), None).unwrap();
    assert!(c.read_lease_version(n(0), key).is_some());

    // A write via server 1 moves the token there mid-stream.
    c.write(n(1), seg, WriteOp::replace(b"holder one"), None).unwrap();
    assert!(c.server(n(1)).holds_token(key));

    assert_eq!(c.read_lease_version(n(0), key), None, "old holder's lease must be revoked");
    assert!(c.try_read_local(n(0), seg, None, 0, 64).is_none(), "old holder must decline");
    let read = c.try_read_local(n(1), seg, None, 0, 64).expect("new holder's lease serves");
    assert_eq!(&read.value.data[..], b"holder one");
}

/// The lease is volatile: a holder crash erases it with the rest of the
/// volatile state, and recovery re-stabilizes the group from the durable
/// primary — after which the ordinary stable path serves again.
#[test]
fn lease_dies_with_the_holder() {
    let (mut c, seg) = leased_cell();
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"acked then crashed"), None).unwrap();
    assert!(c.read_lease_version(n(0), key).is_some());

    c.crash_server(n(0));
    assert_eq!(c.read_lease_version(n(0), key), None, "the lease is volatile");
    assert!(c.try_read_local(n(0), seg, None, 0, 64).is_none(), "a crashed server never serves");

    c.recover_server(n(0));
    c.run_until_quiet();
    assert_eq!(c.read_lease_version(n(0), key), None);
    let read = c.try_read_local(n(0), seg, None, 0, 64).expect("stable after recovery");
    assert_eq!(&read.value.data[..], b"acked then crashed");
}

// ---------------------------------------------------------------------
// Read-repair
// ---------------------------------------------------------------------

/// Builds the laggard scenario: server 2 is marked unstable by the
/// stream's first write, then transiently unreachable through the
/// propagation drain *and* the stabilize round, then reachable again —
/// lagging, unstable, with nothing pending to ever catch it up.
fn orphaned_laggard() -> (Cluster, SegmentId) {
    let (mut c, seg) = leased_cell();
    c.write(n(0), seg, WriteOp::replace(b"stream v1"), None).unwrap();
    assert_eq!(
        c.server(n(2)).replicas.get(&(seg, 0)).unwrap().state,
        ReplicaState::Unstable,
        "the unstable round must have reached server 2 before it drops out"
    );
    c.split(&[&[n(0), n(1)], &[n(2)]]);
    c.write(n(0), seg, WriteOp::append(b" + v2"), None).unwrap();
    // Propagation and the stabilize round both run while 2 is cut off.
    c.run_until_quiet();
    // Transport-level heal only: this models transient unreachability
    // that never escalated to the §3.6 reconciliation a real partition
    // heal performs — exactly the window where reads used to forward
    // forever.
    c.net.heal();
    let laggard = c.server(n(2)).replicas.get(&(seg, 0)).unwrap();
    assert_eq!(laggard.state, ReplicaState::Unstable, "the stabilize round must have missed 2");
    assert_eq!(&laggard.data.contents()[..], b"initial", "2 must have missed every batch");
    (c, seg)
}

/// A read that meets the laggard forwards (correct bytes immediately),
/// queues exactly one repair however many reads pile on, and after the
/// repair fires the laggard is caught up, stable, and locally servable.
#[test]
fn read_repair_catches_up_laggard_after_missed_stabilize() {
    let (mut c, seg) = orphaned_laggard();
    let key = (seg, 0u64);

    // Reads at the laggard forward to the holder — right bytes, wrong
    // path — and arm one single-flighted repair.
    let r = c.read(n(2), seg, None, 0, 64).unwrap();
    assert_eq!(&r.value.data[..], b"stream v1 + v2");
    assert_eq!(c.stats.counter("core/reads/repairs_scheduled"), 1);
    let r = c.read(n(2), seg, None, 0, 64).unwrap();
    assert_eq!(&r.value.data[..], b"stream v1 + v2");
    assert_eq!(c.stats.counter("core/reads/repairs_scheduled"), 1, "repairs are single-flighted");

    // The deferred repair state-transfers the laggard from the durable
    // primary and marks it stable.
    c.run_until_quiet();
    assert_eq!(c.stats.counter("core/reads/repairs"), 1);
    let repaired = c.server(n(2)).replicas.get(&key).unwrap();
    assert_eq!(repaired.state, ReplicaState::Stable);
    assert_eq!(&repaired.data.contents()[..], b"stream v1 + v2");

    // The lock-free path is recovered: no more forwarding.
    let fast = c.try_read_local(n(2), seg, None, 0, 64).expect("repaired replica serves locally");
    assert_eq!(&fast.value.data[..], b"stream v1 + v2");
    let forwarded_before = c.stats.counter("core/reads/forwarded_unstable");
    let _ = c.read(n(2), seg, None, 0, 64).unwrap();
    assert_eq!(c.stats.counter("core/reads/forwarded_unstable"), forwarded_before);
}

/// Without the opt flag the laggard stays unstable indefinitely and
/// every read keeps forwarding — the pre-repair behavior this PR closes.
#[test]
fn without_read_repair_laggard_forwards_forever() {
    let cfg = ClusterConfig::deterministic().with_write_pipeline();
    let mut c = Cluster::new(3, cfg);
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, FileParams { min_replicas: 3, ..FileParams::default() }).unwrap();
    c.run_until_quiet();
    c.write(n(0), seg, WriteOp::replace(b"stream v1"), None).unwrap();
    c.split(&[&[n(0), n(1)], &[n(2)]]);
    c.write(n(0), seg, WriteOp::append(b" + v2"), None).unwrap();
    c.run_until_quiet();
    c.net.heal();

    for _ in 0..3 {
        let r = c.read(n(2), seg, None, 0, 64).unwrap();
        assert_eq!(&r.value.data[..], b"stream v1 + v2");
    }
    c.run_until_quiet();
    assert_eq!(c.stats.counter("core/reads/repairs_scheduled"), 0);
    assert_eq!(
        c.server(n(2)).replicas.get(&(seg, 0)).unwrap().state,
        ReplicaState::Unstable,
        "without repair the laggard waits for a stabilize round that never comes"
    );
}

/// Mid-stream the repair stands down: the group is deliberately unstable
/// while updates flow, and the stabilize round owns the stream's end. A
/// repair that fired early must not mark anything stable.
#[test]
fn read_repair_defers_while_stream_active() {
    let (mut c, seg) = leased_cell();
    let key = (seg, 0u64);
    c.write(n(0), seg, WriteOp::replace(b"still streaming"), None).unwrap();

    // A read via a (current-stream, unstable) member forwards and arms
    // a repair.
    let r = c.read(n(1), seg, None, 0, 64).unwrap();
    assert_eq!(&r.value.data[..], b"still streaming");
    assert_eq!(c.stats.counter("core/reads/repairs_scheduled"), 1);

    // Advance just past the repair's damping window — well short of the
    // stability timeout, so the stream is still formally active.
    c.advance(c.cfg.lazy_apply_delay + c.cfg.lazy_apply_delay);
    assert_eq!(c.stats.counter("core/reads/repairs"), 0, "mid-stream repair must stand down");
    assert_eq!(c.server(n(1)).replicas.get(&key).unwrap().state, ReplicaState::Unstable);

    // The stream's own stabilize round — not the repair — finishes it.
    c.run_until_quiet();
    assert_eq!(c.stats.counter("core/reads/repairs"), 0);
    assert_eq!(c.server(n(1)).replicas.get(&key).unwrap().state, ReplicaState::Stable);
}

// ---------------------------------------------------------------------
// Forced-stabilize replica selection (§3.6 regression coverage)
// ---------------------------------------------------------------------

/// Plants a replica with a hand-built version at one server (the §3.6
/// "disastrous failure" states the forced-stabilize path must survive).
fn plant(c: &Cluster, at: NodeId, key: (SegmentId, u64), version: VersionPair, data: &[u8]) {
    let mut r = Replica::new(version.major, FileParams::default(), SimTime::ZERO);
    r.version = version;
    r.state = ReplicaState::Unstable;
    r.data.append(data);
    c.server(at).replicas.put_sync(key, r);
}

/// The forced-stabilize winner is a history-tree judgment: an old-major
/// replica with many subversions must lose to a newer-major *descendant*
/// (which embeds every one of its updates), not win on raw subversion
/// count — and the ancestor is the copy destroyed as obsolete.
#[test]
fn forced_stabilize_prefers_descendant_over_high_sub_ancestor() {
    let mut c = Cluster::new(3, ClusterConfig::deterministic());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, FileParams { min_replicas: 3, ..FileParams::default() }).unwrap();
    c.run_until_quiet();
    let key = (seg, 0u64);

    // Server 1: the old-major history at subversion 9. Server 2: a
    // descendant that branched off it (major 2, subversion 1). The
    // branch table records the lineage, exactly as §3.5 requires.
    plant(&c, n(1), key, VersionPair { major: 0, sub: 9 }, b"high-sub ancestor");
    plant(&c, n(2), key, VersionPair { major: 2, sub: 1 }, b"descendant history");
    c.with_branch_table(seg, |t| t.record_branch(2, VersionPair { major: 0, sub: 9 }));

    // No reachable token holder: the read must force a stable replica.
    c.crash_server(n(0));
    let r = c.read(n(1), seg, Some(0), 0, 64).unwrap();
    assert_eq!(
        &r.value.data[..],
        b"descendant history",
        "the descendant must win the forced stabilize, whatever the subversion counters say"
    );
    assert_eq!(c.stats.counter("core/reads/stable_search"), 1);
    assert_eq!(
        c.server(n(2)).replicas.get(&key).unwrap().state,
        ReplicaState::Stable,
        "the winner is forced stable"
    );
    assert!(
        c.server(n(1)).replicas.get(&key).is_none(),
        "the obsolete ancestor must be destroyed, not crowned"
    );
    assert_eq!(c.stats.counter("core/replicas/destroyed_obsolete"), 1);
}

/// Survivors whose version *equals* the winner's are marked stable too:
/// the next read must serve locally instead of re-entering the forcing
/// path (and paying its broadcast round) every time.
#[test]
fn forced_stabilize_marks_equal_version_survivors_stable() {
    let mut c = Cluster::new(3, ClusterConfig::deterministic());
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(n(0), seg, FileParams { min_replicas: 3, ..FileParams::default() }).unwrap();
    c.write(n(0), seg, WriteOp::replace(b"settled"), None).unwrap();
    c.run_until_quiet();
    let key = (seg, 0u64);
    let version = c.server(n(1)).replicas.get(&key).unwrap().version;

    // Both surviving replicas are current but unstable (a stream whose
    // holder died before the stabilize round).
    plant(&c, n(1), key, version, b"settled");
    plant(&c, n(2), key, version, b"settled");
    c.crash_server(n(0));

    let r = c.read(n(1), seg, Some(0), 0, 64).unwrap();
    assert_eq!(&r.value.data[..], b"settled");
    assert_eq!(c.stats.counter("core/reads/stable_search"), 1);
    for s in [n(1), n(2)] {
        assert_eq!(
            c.server(s).replicas.get(&key).unwrap().state,
            ReplicaState::Stable,
            "every equal-version survivor must come out of the forcing path stable"
        );
    }

    // The next read — via either survivor — is local, no second search.
    let r = c.read(n(2), seg, Some(0), 0, 64).unwrap();
    assert_eq!(&r.value.data[..], b"settled");
    assert_eq!(c.stats.counter("core/reads/stable_search"), 1, "one forcing round, not two");
}
