//! Property-based tests of the segment server's core guarantees.

use deceit_core::{Cluster, ClusterConfig, FileParams, WriteOp};
use deceit_net::NodeId;
use proptest::prelude::*;

/// A scripted client operation.
#[derive(Debug, Clone)]
enum Op {
    Write { via: u8, data: Vec<u8> },
    Append { via: u8, data: Vec<u8> },
    Read { via: u8 },
    Settle,
}

fn op(servers: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..servers, proptest::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(via, data)| Op::Write { via, data }),
        (0..servers, proptest::collection::vec(any::<u8>(), 1..8))
            .prop_map(|(via, data)| Op::Append { via, data }),
        (0..servers).prop_map(|via| Op::Read { via }),
        Just(Op::Settle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convergence: after quiescence, every replica holds exactly the
    /// contents produced by applying the client's writes in issue order,
    /// and all replicas are identical (§3.3's identical-order requirement
    /// made observable).
    #[test]
    fn replicas_converge_to_issue_order(
        ops in proptest::collection::vec(op(3), 1..40),
        seed in 0u64..1000,
    ) {
        let mut c = Cluster::new(3, ClusterConfig::default().with_seed(seed).without_trace());
        let via0 = NodeId(0);
        let seg = c.create(via0).unwrap().value;
        c.set_params(via0, seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.run_until_quiet();
        let mut model: Vec<u8> = Vec::new();
        for o in &ops {
            match o {
                Op::Write { via, data } => {
                    c.write(NodeId(*via as u32), seg, WriteOp::Replace(data.clone()), None)
                        .unwrap();
                    model = data.clone();
                }
                Op::Append { via, data } => {
                    c.write(NodeId(*via as u32), seg, WriteOp::Append(data.clone()), None)
                        .unwrap();
                    model.extend_from_slice(data);
                }
                Op::Read { via } => {
                    let _ = c.read(NodeId(*via as u32), seg, None, 0, 1 << 16).unwrap();
                }
                Op::Settle => c.run_until_quiet(),
            }
        }
        c.run_until_quiet();
        let holders = c.locate_replicas(via0, seg).unwrap().value;
        prop_assert_eq!(holders.len(), 3);
        for h in holders {
            let r = c.server(h).replicas.get(&(seg, 0)).unwrap();
            prop_assert_eq!(
                &r.data.contents()[..], &model[..],
                "replica at {} diverged", h
            );
        }
    }

    /// Global one-copy serializability with stability notification on:
    /// a read through ANY server, at ANY time, returns exactly the last
    /// written contents — the multiple replicas are invisible (§3).
    #[test]
    fn stability_gives_one_copy_semantics(
        ops in proptest::collection::vec(op(3), 1..30),
        seed in 0u64..1000,
    ) {
        let mut c = Cluster::new(3, ClusterConfig::default().with_seed(seed).without_trace());
        let via0 = NodeId(0);
        let seg = c.create(via0).unwrap().value;
        c.set_params(
            via0,
            seg,
            FileParams { min_replicas: 3, stability: true, ..FileParams::default() },
        )
        .unwrap();
        c.run_until_quiet();
        let mut model: Vec<u8> = Vec::new();
        for o in &ops {
            match o {
                Op::Write { via, data } => {
                    c.write(NodeId(*via as u32), seg, WriteOp::Replace(data.clone()), None)
                        .unwrap();
                    model = data.clone();
                }
                Op::Append { via, data } => {
                    c.write(NodeId(*via as u32), seg, WriteOp::Append(data.clone()), None)
                        .unwrap();
                    model.extend_from_slice(data);
                }
                Op::Read { via } => {
                    let r = c.read(NodeId(*via as u32), seg, None, 0, 1 << 16).unwrap().value;
                    prop_assert_eq!(
                        &r.data[..], &model[..],
                        "stale read via {} despite stability notification", via
                    );
                }
                Op::Settle => c.run_until_quiet(),
            }
        }
    }

    /// Version pairs increase monotonically within a major, one step per
    /// update, regardless of which server issues the write.
    #[test]
    fn version_subs_are_dense_and_monotone(
        vias in proptest::collection::vec(0u8..4, 1..25),
        seed in 0u64..1000,
    ) {
        let mut c = Cluster::new(4, ClusterConfig::default().with_seed(seed).without_trace());
        let seg = c.create(NodeId(0)).unwrap().value;
        let mut last_sub = 0;
        for via in vias {
            let v = c
                .write(NodeId(via as u32), seg, WriteOp::append(b"x"), None)
                .unwrap()
                .value;
            prop_assert_eq!(v.major, 0, "no token loss, no new major");
            prop_assert_eq!(v.sub, last_sub + 1, "subversion increments by one");
            last_sub = v.sub;
        }
    }

    /// Crash/recover of non-token replica holders never loses a committed
    /// (safety ≥ 1) update: the survivor set always serves the last write.
    #[test]
    fn committed_updates_survive_replica_crashes(
        script in proptest::collection::vec((0u8..2, proptest::collection::vec(any::<u8>(), 1..16)), 1..12),
        seed in 0u64..1000,
    ) {
        let mut c = Cluster::new(3, ClusterConfig::default().with_seed(seed).without_trace());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.run_until_quiet();
        let mut last: Vec<u8> = Vec::new();
        for (crash_choice, data) in &script {
            // Crash one non-token replica holder, write, recover it.
            let victim = NodeId(1 + *crash_choice as u32);
            c.crash_server(victim);
            c.write(NodeId(0), seg, WriteOp::Replace(data.clone()), None).unwrap();
            last = data.clone();
            c.run_until_quiet();
            c.recover_server(victim);
            c.run_until_quiet();
            let r = c.read(victim, seg, None, 0, 1 << 16).unwrap().value;
            prop_assert_eq!(&r.data[..], &last[..]);
        }
        // Full quiescence: all three replicas restored and identical.
        c.run_until_quiet();
        let holders = c.locate_replicas(NodeId(0), seg).unwrap().value;
        prop_assert_eq!(holders.len(), 3);
        for h in holders {
            let r = c.server(h).replicas.get(&(seg, 0)).unwrap();
            prop_assert_eq!(&r.data.contents()[..], &last[..]);
        }
    }
}
