//! Focused tests of the token protocol, including the §3.3 optimizations
//! and their interaction with failures.

use deceit_core::{
    Cluster, ClusterConfig, DeceitError, FileParams, SegmentId, WriteAvailability, WriteOp,
};
use deceit_net::NodeId;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

fn fixture(cfg: ClusterConfig) -> (Cluster, SegmentId) {
    let mut c = Cluster::new(3, cfg);
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(
        n(0),
        seg,
        FileParams { min_replicas: 3, stability: false, ..FileParams::default() },
    )
    .unwrap();
    c.write(n(0), seg, WriteOp::replace(b"base"), None).unwrap();
    c.run_until_quiet();
    (c, seg)
}

#[test]
fn piggyback_acquisition_saves_request_round() {
    let mut plain_cfg = ClusterConfig::deterministic().without_trace();
    let mut piggy_cfg = plain_cfg.clone();
    piggy_cfg.opt_piggyback_acquire = true;
    let mut msgs = Vec::new();
    for cfg in [plain_cfg.clone(), piggy_cfg] {
        let (mut c, seg) = fixture(cfg);
        let before = c.net.stats().tag_count("token-request");
        c.write(n(1), seg, WriteOp::replace(b"move"), None).unwrap();
        msgs.push(c.net.stats().tag_count("token-request") - before);
        // Correctness identical: contents converge.
        c.run_until_quiet();
        let r = c.read(n(2), seg, None, 0, 16).unwrap().value;
        assert_eq!(&r.data[..], b"move");
    }
    assert!(msgs[0] > 0, "plain acquisition uses a request round");
    assert_eq!(msgs[1], 0, "piggybacked acquisition sends no request messages");
    let _ = &mut plain_cfg;
}

#[test]
fn forward_small_keeps_token_parked() {
    let mut cfg = ClusterConfig::deterministic().without_trace();
    cfg.opt_forward_small = true;
    let (mut c, seg) = fixture(cfg);
    for i in 0..6 {
        let via = n(i % 3);
        c.write(via, seg, WriteOp::replace(format!("w{i}").as_bytes()), None).unwrap();
    }
    assert!(c.server(n(0)).holds_token((seg, 0)), "token never moved");
    assert_eq!(c.stats.counter("core/token/passes"), 0);
    assert!(c.stats.counter("core/token/updates_forwarded") >= 4);
    c.run_until_quiet();
    let r = c.read(n(2), seg, None, 0, 16).unwrap().value;
    assert_eq!(&r.data[..], b"w5");
}

#[test]
fn forward_small_ignores_large_updates() {
    let mut cfg = ClusterConfig::deterministic().without_trace();
    cfg.opt_forward_small = true;
    cfg.forward_small_threshold = 64;
    let (mut c, seg) = fixture(cfg);
    // A large write moves the token as usual.
    let big = vec![0u8; 4096];
    c.write(n(1), seg, WriteOp::Replace(big), None).unwrap();
    assert!(c.server(n(1)).holds_token((seg, 0)), "large update moved the token");
    assert_eq!(c.stats.counter("core/token/updates_forwarded"), 0);
}

#[test]
fn forward_small_falls_back_when_holder_dead() {
    let mut cfg = ClusterConfig::deterministic().without_trace();
    cfg.opt_forward_small = true;
    let (mut c, seg) = fixture(cfg);
    c.crash_server(n(0));
    // No reachable holder: the write falls through to the normal path and
    // generates a new token (majority of 3 reachable).
    let v = c.write(n(1), seg, WriteOp::replace(b"regenerated"), None).unwrap().value;
    assert_ne!(v.major, 0);
    assert!(c.server(n(1)).holds_token((seg, v.major)));
}

#[test]
fn conditional_write_checked_at_forward_target() {
    let mut cfg = ClusterConfig::deterministic().without_trace();
    cfg.opt_forward_small = true;
    let (mut c, seg) = fixture(cfg);
    let v = c.read(n(1), seg, None, 0, 16).unwrap().value.version;
    // Another client's forwarded write bumps the version at the holder.
    c.write(n(2), seg, WriteOp::replace(b"sneak"), None).unwrap();
    let err = c.write(n(1), seg, WriteOp::replace(b"stale"), Some(v)).unwrap_err();
    assert!(matches!(err, DeceitError::VersionConflict { .. }));
}

#[test]
fn optimizations_respect_availability_policy() {
    // Medium availability + partition: the forwarded write cannot bypass
    // the majority rule, because the check runs at the token holder.
    let mut cfg = ClusterConfig::deterministic().without_trace();
    cfg.opt_forward_small = true;
    let mut c = Cluster::new(3, cfg);
    let seg = c.create(n(0)).unwrap().value;
    c.set_params(
        n(0),
        seg,
        FileParams {
            min_replicas: 3,
            availability: WriteAvailability::Medium,
            stability: false,
            ..FileParams::default()
        },
    )
    .unwrap();
    c.write(n(0), seg, WriteOp::replace(b"base"), None).unwrap();
    c.run_until_quiet();
    c.split(&[&[n(0)], &[n(1), n(2)]]);
    // Forwarding to the minority-side holder is reachable only from its
    // own side — and the holder's token is disabled there.
    let err = c.write(n(0), seg, WriteOp::replace(b"x"), None).unwrap_err();
    assert!(matches!(err, DeceitError::WriteUnavailable(_)));
}

#[test]
fn token_survives_holder_crash_and_recovery() {
    // The token is non-volatile (§3.5): after crash + recovery with no
    // competing version, the original holder still holds it.
    let (mut c, seg) = fixture(ClusterConfig::deterministic().without_trace());
    assert!(c.server(n(0)).holds_token((seg, 0)));
    c.crash_server(n(0));
    c.recover_server(n(0));
    c.run_until_quiet();
    assert!(c.server(n(0)).holds_token((seg, 0)), "token state is durable");
    c.write(n(0), seg, WriteOp::replace(b"after"), None).unwrap();
    assert_eq!(c.stats.counter("core/token/generated"), 0);
}
