//! The ShardKey-indexed hot-state seam.
//!
//! The engine's state divides into *cold* cell-wide state (membership,
//! topology, configuration, allocators) and *hot* per-file state: replica
//! tables, token tables, ordered-delivery buffers, write-stream state,
//! location caches, branch tables, and the deferred-work queue. This
//! module holds the containers the hot state lives in.
//!
//! Every container is physically partitioned by shard slot
//! ([`crate::shard_slot`] of the segment id) and internally locked per
//! slot, so:
//!
//! * all access works through `&self` — protocol code can mutate one
//!   file's hot state while holding only the host's *shared* cell lock;
//! * operations on files in different slots touch disjoint lock sets and
//!   proceed concurrently;
//! * the per-slot data locks are *leaf* locks, held only across one
//!   container operation, never while taking another lock — so they can
//!   never participate in a deadlock cycle.
//!
//! Exclusion between two protocol executions touching the *same* file is
//! not this module's job: the hosting layer serializes them on the shard
//! ring lock their [`crate::OpClass`] declares (or on the exclusive cell
//! lock). The data locks here only make the interleaving of *independent*
//! executions sound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use deceit_sim::{EventQueue, SimDuration, SimTime};
use deceit_storage::{Disk, DiskConfig, StoredSize};

use crate::event::Pending;
use crate::host::{shard_slot, ShardKey};
use crate::server::{ReplicaKey, SegmentId};

/// Keys that know which shard their hot state lives in.
pub trait HotKey: Ord + Clone {
    /// The shard key this key routes by.
    fn shard_key(&self) -> ShardKey;
}

impl HotKey for ReplicaKey {
    fn shard_key(&self) -> ShardKey {
        self.0 .0
    }
}

impl HotKey for SegmentId {
    fn shard_key(&self) -> ShardKey {
        self.0
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A `BTreeMap` partitioned by shard slot, with per-slot interior locks.
#[derive(Debug)]
pub struct ShardedMap<K: HotKey, V> {
    slots: Box<[Mutex<BTreeMap<K, V>>]>,
}

impl<K: HotKey, V> ShardedMap<K, V> {
    /// An empty map over `shards` slots (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedMap { slots: (0..shards.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect() }
    }

    fn slot(&self, k: &K) -> &Mutex<BTreeMap<K, V>> {
        &self.slots[shard_slot(k.shard_key(), self.slots.len())]
    }

    /// Inserts, returning the previous value.
    pub fn insert(&self, k: K, v: V) -> Option<V> {
        lock(self.slot(&k)).insert(k, v)
    }

    /// Removes, returning the previous value.
    pub fn remove(&self, k: &K) -> Option<V> {
        lock(self.slot(k)).remove(k)
    }

    /// Whether the key is present.
    pub fn contains(&self, k: &K) -> bool {
        lock(self.slot(k)).contains_key(k)
    }

    /// An owned copy of the value.
    pub fn get(&self, k: &K) -> Option<V>
    where
        V: Clone,
    {
        lock(self.slot(k)).get(k).cloned()
    }

    /// Runs `f` on the value (present or not) under the slot lock — one
    /// atomic read-modify-write.
    pub fn with<R>(&self, k: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(lock(self.slot(k)).get_mut(k))
    }

    /// Runs `f` on the value, inserting `mk()` first if absent.
    pub fn with_or_insert<R>(
        &self,
        k: K,
        mk: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let slot = self.slot(&k);
        let mut map = lock(slot);
        f(map.entry(k).or_insert_with(mk))
    }

    /// Every key, ascending within and across slots.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            out.extend(lock(slot).keys().cloned());
        }
        out.sort();
        out
    }

    /// Empties the map.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            lock(slot).clear();
        }
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A durable/volatile [`Disk`] partitioned by shard slot, with per-slot
/// interior locks and an integrated read-touch buffer.
///
/// The touch buffer is how the lock-free read fast path feeds the LRU:
/// [`ShardedDisk::note_read`] records an access without mutating the
/// value; [`ShardedDisk::apply_touches_slot`] folds the recorded accesses
/// into the values *atomically under the slot lock*, so a concurrent
/// mutation can never be clobbered by a stale clone.
#[derive(Debug)]
pub struct ShardedDisk<V: Clone + StoredSize> {
    slots: Box<[Mutex<DiskSlot<V>>]>,
    /// Pending recorded read touches across all slots — lets the
    /// apply paths skip every slot lock when nothing is buffered,
    /// which is the common case on mutation entry.
    pending_touches: AtomicUsize,
}

#[derive(Debug)]
struct DiskSlot<V: Clone + StoredSize> {
    disk: Disk<ReplicaKey, V>,
    touches: BTreeMap<ReplicaKey, SimTime>,
}

impl<V: Clone + StoredSize> ShardedDisk<V> {
    /// An empty store over `shards` slots with the given disk timing.
    pub fn new(cfg: DiskConfig, shards: usize) -> Self {
        ShardedDisk {
            slots: (0..shards.max(1))
                .map(|_| Mutex::new(DiskSlot { disk: Disk::new(cfg), touches: BTreeMap::new() }))
                .collect(),
            pending_touches: AtomicUsize::new(0),
        }
    }

    /// Number of shard slots.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, k: &ReplicaKey) -> &Mutex<DiskSlot<V>> {
        &self.slots[shard_slot(k.0 .0, self.slots.len())]
    }

    /// Decrements the pending-touch fast flag without ever wrapping.
    ///
    /// Every mutation of the counter happens under some slot's data lock,
    /// but the counter itself is global across slots, so two slots'
    /// drains race on it. The adds and subs are balanced by construction
    /// (each buffered touch is counted exactly once in, once out), but a
    /// plain `fetch_sub` turns any future accounting slip into a wrapped
    /// counter that reads as "billions pending" — or, worse, a later
    /// balancing add lands on the wrapped value and the flag reads zero
    /// with touches still buffered, wedging the pump's fast-path skip
    /// permanently. Saturating keeps the flag self-healing: it can
    /// transiently over-report (harmless — one extra slot probe) but can
    /// never wedge below the true count.
    fn sub_pending(&self, n: usize) {
        if n == 0 {
            return;
        }
        let _ = self
            .pending_touches
            // lint: allow(ordering-audit): saturating fast flag — the RMW needs no ordering because the buffered touches it summarizes are read under the slot mutex, and staleness only costs one extra slot probe
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    fn seg_slot(&self, seg: SegmentId) -> &Mutex<DiskSlot<V>> {
        &self.slots[shard_slot(seg.0, self.slots.len())]
    }

    /// An owned copy of the newest value (volatile view).
    pub fn get(&self, k: &ReplicaKey) -> Option<V> {
        lock(self.slot(k)).disk.get(k).cloned()
    }

    /// Runs `f` on a borrow of the newest value under the slot lock —
    /// the clone-free read path.
    pub fn with_ref<R>(&self, k: &ReplicaKey, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(lock(self.slot(k)).disk.get(k))
    }

    /// Runs `f` on a borrow of the newest value and — when `f` serves
    /// (returns `Some`) — records a read touch of `k` at `at` in the
    /// *same* slot-lock acquisition: [`ShardedDisk::with_ref`] +
    /// [`ShardedDisk::note_read`] fused into one lock round, for the
    /// read paths hot enough that the second acquisition shows up.
    pub fn with_ref_served<R>(
        &self,
        k: &ReplicaKey,
        at: SimTime,
        f: impl FnOnce(Option<&V>) -> Option<R>,
    ) -> Option<R> {
        let mut slot = lock(self.slot(k));
        let out = f(slot.disk.get(k))?;
        self.record_touch(&mut slot, *k, at);
        Some(out)
    }

    /// Buffers one read touch in a locked slot, maintaining the
    /// pending-touch fast flag — the single copy of the touch/counter
    /// protocol [`ShardedDisk::note_read`] and
    /// [`ShardedDisk::with_ref_served`] share (the len-delta drives the
    /// atomic flag; see [`ShardedDisk::sub_pending`] for why the two
    /// must never drift apart).
    fn record_touch(&self, slot: &mut DiskSlot<V>, k: ReplicaKey, at: SimTime) {
        let before = slot.touches.len();
        let entry = slot.touches.entry(k).or_insert(at);
        *entry = (*entry).max(at);
        if slot.touches.len() > before {
            // lint: allow(ordering-audit): fast-flag increment published under the slot mutex the touch itself lives behind; readers tolerate a stale count by design
            self.pending_touches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the key currently exists (volatile view).
    pub fn contains(&self, k: &ReplicaKey) -> bool {
        lock(self.slot(k)).disk.contains(k)
    }

    /// Write-through; durable on return. Returns the disk time consumed.
    pub fn put_sync(&self, k: ReplicaKey, v: V) -> SimDuration {
        lock(self.slot(&k)).disk.put_sync(k, v)
    }

    /// Write-behind; visible immediately, durable after a flush.
    pub fn put_async(&self, k: ReplicaKey, v: V) {
        lock(self.slot(&k)).disk.put_async(k, v)
    }

    /// Durable removal. Returns the disk time consumed.
    pub fn delete_sync(&self, k: &ReplicaKey) -> SimDuration {
        lock(self.slot(k)).disk.delete_sync(k)
    }

    /// Atomic read-modify-write-behind: if the key is present, `f` may
    /// mutate it in place; a change is written back asynchronously.
    /// Returns whether `f` reported a change.
    pub fn update_async(&self, k: &ReplicaKey, f: impl FnOnce(&mut V) -> bool) -> bool {
        let mut slot = lock(self.slot(k));
        let Some(mut v) = slot.disk.get(k).cloned() else {
            return false;
        };
        if f(&mut v) {
            slot.disk.put_async(*k, v);
            true
        } else {
            false
        }
    }

    /// Makes every pending write in every slot durable. Returns total
    /// disk time.
    pub fn flush_all(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for slot in self.slots.iter() {
            total += lock(slot).disk.flush_all();
        }
        total
    }

    /// Makes every pending write in `seg`'s slot durable — the slice a
    /// per-file flush event covers. Returns the disk time consumed.
    pub fn flush_slot_of(&self, seg: SegmentId) -> SimDuration {
        lock(self.seg_slot(seg)).disk.flush_all()
    }

    /// Simulates a machine crash: every slot reverts to durable contents
    /// and pending read touches are dropped.
    pub fn crash(&self) {
        for slot in self.slots.iter() {
            let mut slot = lock(slot);
            slot.disk.crash();
            self.sub_pending(slot.touches.len());
            slot.touches.clear();
        }
    }

    /// Every current key, ascending.
    pub fn keys(&self) -> Vec<ReplicaKey> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            out.extend(lock(slot).disk.keys().cloned());
        }
        out.sort();
        out
    }

    /// All major versions of `seg` stored here, ascending — a range scan
    /// within the one slot the segment lives in.
    pub fn majors_of(&self, seg: SegmentId) -> Vec<u64> {
        lock(self.seg_slot(seg))
            .disk
            .keys_in_range(&(seg, 0), &(seg, u64::MAX))
            .map(|(_, major)| *major)
            .collect()
    }

    /// The highest-numbered (most recent) major of `seg` stored here.
    pub fn latest_major(&self, seg: SegmentId) -> Option<u64> {
        lock(self.seg_slot(seg))
            .disk
            .keys_in_range(&(seg, 0), &(seg, u64::MAX))
            .map(|(_, major)| *major)
            .last()
    }

    /// Whether no entries exist (volatile view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live entries (volatile view).
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| lock(s).disk.len()).sum()
    }

    /// Total durable bytes (capacity accounting).
    pub fn durable_bytes(&self) -> usize {
        self.slots.iter().map(|s| lock(s).disk.durable_bytes()).sum()
    }

    /// Total synchronous writes performed.
    pub fn sync_writes(&self) -> u64 {
        self.slots.iter().map(|s| lock(s).disk.sync_writes).sum()
    }

    /// Total asynchronous writes performed.
    pub fn async_writes(&self) -> u64 {
        self.slots.iter().map(|s| lock(s).disk.async_writes).sum()
    }

    /// Writes lost to crashes (unflushed at crash time).
    pub fn lost_writes(&self) -> u64 {
        self.slots.iter().map(|s| lock(s).disk.lost_writes).sum()
    }

    /// Records a read of `k` at `at` without touching the value; applied
    /// by the next [`ShardedDisk::apply_touches_slot`] covering the key.
    /// Deduplicated by key, so the buffer is bounded by the entry count.
    pub fn note_read(&self, k: ReplicaKey, at: SimTime) {
        let mut slot = lock(self.slot(&k));
        self.record_touch(&mut slot, k, at);
    }

    /// Folds the recorded read touches of one slot into the stored
    /// values. `apply` mutates a value for one touch and reports whether
    /// anything changed; changes are written back asynchronously (the
    /// touch is metadata, not worth a durable write).
    pub fn apply_touches_slot(&self, slot: usize, apply: &impl Fn(&mut V, SimTime) -> bool) {
        // lint: allow(ordering-audit): skip hint only — a stale zero is impossible (the flag saturates, never under-reports) and a stale nonzero costs one slot-lock probe
        if self.pending_touches.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut guard = lock(&self.slots[slot]);
        if guard.touches.is_empty() {
            return;
        }
        let touches = std::mem::take(&mut guard.touches);
        self.sub_pending(touches.len());
        for (k, at) in touches {
            let Some(mut v) = guard.disk.get(&k).cloned() else { continue };
            if apply(&mut v, at) {
                guard.disk.put_async(k, v);
            }
        }
    }

    /// The pending-touch fast flag's current reading (diagnostics; may
    /// transiently over-report under concurrency, never under-report).
    pub fn pending_touch_count(&self) -> usize {
        // lint: allow(ordering-audit): diagnostics read of the fast flag; advisory by contract
        self.pending_touches.load(Ordering::Relaxed)
    }

    /// Folds the recorded read touches of every slot.
    pub fn apply_touches_all(&self, apply: &impl Fn(&mut V, SimTime) -> bool) {
        // lint: allow(ordering-audit): same skip hint as apply_touches_slot — never a stale zero, worst case one wasted sweep
        if self.pending_touches.load(Ordering::Relaxed) == 0 {
            return;
        }
        for slot in 0..self.slots.len() {
            self.apply_touches_slot(slot, apply);
        }
    }
}

/// The cluster's deferred-work queue, partitioned by shard slot.
///
/// Each [`Pending`] routes to the slot of its [`Pending::shard_hint`].
/// All queues share one atomic sequence source, so a global pop (the
/// simulator's drain) observes the exact `(time, seq)` order a single
/// queue would have produced, while a per-slot pop (the live pump, the
/// sharded mutation path) never needs any other slot's lock.
#[derive(Debug)]
pub(crate) struct ShardedEvents {
    slots: Box<[Mutex<EventQueue<Pending>>]>,
    seq: AtomicU64,
    len: AtomicUsize,
}

impl ShardedEvents {
    /// An empty queue over `shards` slots (at least one, at most 64 so a
    /// pending-work scan fits in one `u64` mask).
    pub(crate) fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, 64);
        ShardedEvents {
            slots: (0..shards).map(|_| Mutex::new(EventQueue::new())).collect(),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of shard slots.
    pub(crate) fn shard_count(&self) -> usize {
        self.slots.len()
    }

    fn slot_of(&self, ev: &Pending) -> usize {
        shard_slot(ev.shard_hint(), self.slots.len())
    }

    /// Schedules `ev` at `at` in its slot's queue.
    pub(crate) fn push(&self, at: SimTime, ev: Pending) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot_of(&ev);
        lock(&self.slots[slot]).push_with_seq(at, seq, ev);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops the globally earliest event (any due time).
    pub(crate) fn pop(&self) -> Option<(SimTime, Pending)> {
        self.pop_from(None, None)
    }

    /// Pops the globally earliest event due at or before `deadline`.
    pub(crate) fn pop_due(&self, deadline: SimTime) -> Option<(SimTime, Pending)> {
        self.pop_from(None, Some(deadline))
    }

    /// Pops the earliest event of the given slots due at or before
    /// `deadline` — the scoped drain of the sharded mutation path.
    pub(crate) fn pop_due_slots(
        &self,
        slots: &[usize],
        deadline: SimTime,
    ) -> Option<(SimTime, Pending)> {
        self.pop_from(Some(slots), Some(deadline))
    }

    /// Pops the earliest *ready* event of one slot: anything already due
    /// at `now`, plus any not-yet-due event that is not time-gated
    /// ([`Pending::due_gated`]) — the live pump's per-shard drain, which
    /// advances deferred work eagerly without declaring time conditions
    /// satisfied early.
    pub(crate) fn pop_slot_ready(&self, slot: usize, now: SimTime) -> Option<(SimTime, Pending)> {
        let out = lock(&self.slots[slot]).pop_ready(|at, ev| at <= now || !ev.due_gated());
        if out.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        out
    }

    fn pop_from(
        &self,
        slots: Option<&[usize]>,
        deadline: Option<SimTime>,
    ) -> Option<(SimTime, Pending)> {
        // Find the slot holding the globally earliest (time, seq) key,
        // then pop from it. Single-threaded callers (the simulator, the
        // exclusive path) see the exact order one queue would produce;
        // concurrent scoped callers only race with pushes, and popping a
        // newly earlier event instead is equally valid.
        let candidate = |i: usize| {
            let key = lock(&self.slots[i]).peek_key()?;
            match deadline {
                Some(d) if key.0 > d => None,
                _ => Some((key, i)),
            }
        };
        let best = match slots {
            Some(list) => list.iter().filter_map(|&i| candidate(i)).min(),
            None => (0..self.slots.len()).filter_map(candidate).min(),
        };
        let (_, slot) = best?;
        let out = match deadline {
            Some(d) => lock(&self.slots[slot]).pop_due(d),
            None => lock(&self.slots[slot]).pop(),
        };
        if out.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        out
    }

    /// Pending events in one slot.
    pub(crate) fn slot_len(&self, slot: usize) -> usize {
        lock(&self.slots[slot]).len()
    }

    /// Pending events that are time-gated (diagnostics and tests).
    #[cfg(test)]
    pub(crate) fn gated_len(&self) -> usize {
        self.slots.iter().map(|s| lock(s).iter().filter(|e| e.due_gated()).count()).sum()
    }

    /// Total pending events. Lock-free.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Bitmask of slots with pending work — allocation-free, one lock
    /// probe per slot. (Production paths use [`ShardedEvents::ready_mask`];
    /// this unfiltered form remains for tests pinning queue contents.)
    #[cfg(test)]
    pub(crate) fn pending_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if !lock(slot).is_empty() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Bitmask of slots with work a live pump can fire at `now`: due
    /// events plus anything not time-gated. A slot holding only parked
    /// future checks reports clear, so an otherwise idle pump does not
    /// contend on its ring lock every interval.
    pub(crate) fn ready_mask(&self, now: SimTime) -> u64 {
        let mut mask = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if lock(slot).any_entry(|at, ev| at <= now || !ev.due_gated()) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Drops every pending event for which `pred` returns false.
    pub(crate) fn retain(&self, mut pred: impl FnMut(&Pending) -> bool) {
        let mut removed = 0usize;
        for slot in self.slots.iter() {
            let mut q = lock(slot);
            let before = q.len();
            q.retain(&mut pred);
            removed += before - q.len();
        }
        self.len.fetch_sub(removed, Ordering::Relaxed);
    }

    /// Removes and returns every event of `key`'s slot matching `pred`,
    /// in queue order — the ordered-drain primitive behind
    /// write-through catch-up.
    pub(crate) fn drain_matching(
        &self,
        key_slot: usize,
        mut pred: impl FnMut(&Pending) -> bool,
    ) -> Vec<Pending> {
        let mut drained = Vec::new();
        {
            let mut q = lock(&self.slots[key_slot]);
            q.retain(|ev| {
                if pred(ev) {
                    drained.push(ev.clone());
                    false
                } else {
                    true
                }
            });
        }
        self.len.fetch_sub(drained.len(), Ordering::Relaxed);
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deceit_net::NodeId;

    fn apply_ev(seg: u64, at_us: u64) -> (SimTime, Pending) {
        (
            SimTime::from_micros(at_us),
            Pending::StabilizeCheck { server: NodeId(0), key: (SegmentId(seg), 0), epoch: 0 },
        )
    }

    #[test]
    fn sharded_events_pop_in_global_order() {
        let q = ShardedEvents::new(4);
        // Interleave pushes across slots with equal and distinct times.
        for (seg, at) in [(0, 30), (1, 10), (2, 10), (3, 20), (4, 10)] {
            let (t, ev) = apply_ev(seg, at);
            q.push(t, ev);
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop()).map(|(_, ev)| ev.shard_hint()).collect();
        // Time order, FIFO within equal times — exactly one queue's order.
        assert_eq!(order, vec![1, 2, 4, 3, 0]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn scoped_pop_never_touches_other_slots() {
        let q = ShardedEvents::new(4);
        for (seg, at) in [(0, 5), (1, 1), (2, 1)] {
            let (t, ev) = apply_ev(seg, at);
            q.push(t, ev);
        }
        // Scope {0}: slot 1/2 events are earlier but out of scope.
        let (_, ev) = q.pop_due_slots(&[0], SimTime::from_micros(100)).unwrap();
        assert_eq!(ev.shard_hint(), 0);
        assert!(q.pop_due_slots(&[0], SimTime::from_micros(100)).is_none());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_mask(), 0b0110);
    }

    #[test]
    fn sharded_map_routes_and_mutates() {
        let m: ShardedMap<SegmentId, u32> = ShardedMap::new(4);
        assert!(m.insert(SegmentId(6), 1).is_none());
        assert_eq!(m.get(&SegmentId(6)), Some(1));
        m.with_or_insert(SegmentId(6), || 0, |v| *v += 10);
        assert_eq!(m.get(&SegmentId(6)), Some(11));
        assert!(m.contains(&SegmentId(6)));
        assert_eq!(m.remove(&SegmentId(6)), Some(11));
        assert!(m.is_empty());
    }

    #[test]
    fn sharded_disk_touches_apply_atomically() {
        let d: ShardedDisk<Vec<u8>> = ShardedDisk::new(DiskConfig::workstation(), 4);
        let key = (SegmentId(2), 0u64);
        d.put_sync(key, vec![1]);
        d.note_read(key, SimTime::from_micros(50));
        d.note_read(key, SimTime::from_micros(90));
        let mut applied = Vec::new();
        d.apply_touches_slot(2, &|v: &mut Vec<u8>, at| {
            v.push(at.as_micros() as u8);
            true
        });
        // Deduplicated to the latest touch.
        applied.extend(d.get(&key).unwrap());
        assert_eq!(applied, vec![1, 90]);
        // Applying again is a no-op: the buffer was drained.
        d.apply_touches_all(&|_v, _at| panic!("no touches left"));
    }

    /// The touch-accounting crash race (`crash` racing `note_read` /
    /// `apply_touches_slot`): hammer all three from concurrent threads,
    /// then verify the fast flag is neither wedged high (over-counting
    /// that never drains) nor wedged low (a buffered touch the flag
    /// hides, which would permanently disable the pump's LRU feed).
    #[test]
    fn touch_accounting_survives_crash_and_apply_races() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        use std::thread;

        let d: Arc<ShardedDisk<Vec<u8>>> = Arc::new(ShardedDisk::new(DiskConfig::workstation(), 4));
        let seed = |d: &ShardedDisk<Vec<u8>>| {
            for seg in 0..8u64 {
                d.put_sync((SegmentId(seg), 0), vec![0]);
            }
        };
        seed(&d);
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3u64)
            .map(|t| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        d.note_read((SegmentId((i + t) % 8), 0), SimTime::from_micros(i));
                        i += 1;
                    }
                })
            })
            .collect();
        for round in 0..300 {
            if round % 3 == 0 {
                d.crash();
                seed(&d);
            }
            for slot in 0..4 {
                d.apply_touches_slot(slot, &|_v, _at| false);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }

        // Quiesce: drain whatever the readers left behind.
        d.apply_touches_all(&|_v, _at| false);
        assert_eq!(d.pending_touch_count(), 0, "flag must settle to the truth at quiescence");

        // And the fast path must not be wedged: a fresh touch still
        // reaches the apply fold.
        d.note_read((SegmentId(0), 0), SimTime::from_micros(9_999));
        let applied = AtomicBool::new(false);
        d.apply_touches_slot(0, &|_v, _at| {
            applied.store(true, Ordering::Relaxed);
            false
        });
        assert!(applied.load(Ordering::Relaxed), "fast flag hid a buffered touch");
        assert_eq!(d.pending_touch_count(), 0);
    }

    #[test]
    fn sharded_disk_majors_scan_one_slot() {
        let d: ShardedDisk<Vec<u8>> = ShardedDisk::new(DiskConfig::workstation(), 4);
        d.put_sync((SegmentId(5), 0), vec![0]);
        d.put_sync((SegmentId(5), 3), vec![0]);
        d.put_sync((SegmentId(9), 7), vec![0]); // same slot (5 % 4 == 9 % 4)
        assert_eq!(d.majors_of(SegmentId(5)), vec![0, 3]);
        assert_eq!(d.latest_major(SegmentId(5)), Some(3));
        assert_eq!(d.latest_major(SegmentId(1)), None);
        assert_eq!(d.len(), 3);
    }
}
