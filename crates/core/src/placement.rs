//! Access-driven replica placement and file migration (§3.1 method 4,
//! made measured instead of eager).
//!
//! # Policy
//!
//! Every server keeps an always-on, lock-free table of per-file remote
//! read counters ([`PlacementCore`]): a read that enters at a server with
//! no local replica — and therefore forwards (§2.1) — bumps that
//! (server, file) counter. When a counter crosses
//! [`ClusterConfig::placement_threshold`](crate::ClusterConfig) and
//! `opt_placement` is on, the cluster schedules one deferred migration
//! that (a) *creates* a replica on the forwarding server from a durable
//! stable copy (the existing §3.1 regeneration path,
//! [`Cluster::generate_replica_now`]), then (b) *retires* idle replicas
//! nobody reads via the §3.1 LRU extra-replica deletion — never dropping
//! below the per-file [`FileParams::min_replicas`](crate::FileParams)
//! floor. A retirement proposal the floor blocks is counted as
//! vetoed, not forced.
//!
//! # Damping windows
//!
//! Three windows keep the policy from thrashing:
//!
//! * **epoch decay** — counters halve once per
//!   `placement_epoch` of protocol time, so a file that *was* hot does
//!   not stay "hot" forever; the signal tracks current traffic.
//! * **migration damping** — a crossing schedules the migration
//!   `lazy_apply_delay` out (due-gated, exactly like read-repair), so a
//!   burst of forwarded reads queues one deferred move, not a storm.
//! * **stream stand-off** — a migration that fires while the file's
//!   write stream is active re-queues itself for the next window instead
//!   of copying a replica that would lag by the next buffered update.
//!
//! # Floor invariant
//!
//! The placement subsystem can only ever *add* replicas directly; every
//! deletion goes through [`Cluster::delete_extra_replicas`], which
//! deletes at most `holders - min_replicas` idle copies. The replication
//! floor therefore cannot be violated by any migration/retirement
//! interleaving, including under crash or partition — a crash can make
//! copies *unreachable*, but placement never destroys the last
//! `min_replicas` of them.
//!
//! Migrations are single-flighted per (server, file) through
//! [`ServerState`](crate::server::ServerState)'s volatile `migrations`
//! map, the same discipline read-repair uses: a burst of forwarded reads
//! arms one deferred move, a crash of the destination clears the claim
//! with the rest of the volatile state, and the pending event dies with
//! its owner.

use std::sync::atomic::{AtomicU64, Ordering};

use deceit_net::NodeId;

use crate::cluster::Cluster;
use crate::event::Pending;
use crate::server::{ReplicaKey, SegmentId};

/// Slots per server in the access table. Power of two; at 24 bytes a
/// slot the whole table is ~12 KiB per server, allocated once.
const TABLE_SLOTS: usize = 512;

/// Linear-probe length before a recording gives up. A full probe window
/// means the table region is saturated with other hot files; the read
/// proceeds unrecorded rather than ever blocking on the signal path.
const PROBE: usize = 8;

fn hash_seg(seg: u64) -> usize {
    // splitmix64 finalizer: cheap, well-distributed, no allocation.
    let mut x = seg.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as usize
}

/// One open-addressed counter slot: the segment it tracks (`seg + 1`,
/// 0 = empty), the epoch the count was last decayed to, and the decayed
/// remote-read count itself.
#[derive(Debug)]
struct AccessSlot {
    key: AtomicU64,
    epoch: AtomicU64,
    count: AtomicU64,
}

impl AccessSlot {
    fn new() -> Self {
        AccessSlot { key: AtomicU64::new(0), epoch: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Decays the count to `epoch` (halving once per elapsed epoch),
    /// then adds one and returns the new count. Wait-free but
    /// approximate under races: two concurrent decayers can at worst
    /// halve once instead of twice, which a heuristic signal tolerates.
    fn bump(&self, epoch: u64, decays: &AtomicU64) -> u64 {
        let seen = self.epoch.load(Ordering::Relaxed);
        if epoch > seen
            && self
                .epoch
                .compare_exchange(seen, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let shift = (epoch - seen).min(63) as u32;
            let old = self.count.swap(0, Ordering::Relaxed);
            self.count.fetch_add(old >> shift, Ordering::Relaxed);
            decays.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The count as it would read in `epoch`, without recording.
    fn peek(&self, epoch: u64) -> u64 {
        let seen = self.epoch.load(Ordering::Relaxed);
        let shift = epoch.saturating_sub(seen).min(63) as u32;
        self.count.load(Ordering::Relaxed) >> shift
    }
}

/// One server's fixed-footprint access table.
#[derive(Debug)]
struct AccessTable {
    slots: Box<[AccessSlot]>,
}

impl AccessTable {
    fn new() -> Self {
        AccessTable { slots: (0..TABLE_SLOTS).map(|_| AccessSlot::new()).collect() }
    }

    fn slot_of(&self, seg: u64) -> Option<&AccessSlot> {
        let tag = seg.wrapping_add(1);
        let h = hash_seg(seg);
        for p in 0..PROBE {
            let s = &self.slots[(h + p) & (TABLE_SLOTS - 1)];
            if s.key.load(Ordering::Relaxed) == tag {
                return Some(s);
            }
        }
        None
    }

    fn record(&self, seg: u64, epoch: u64, decays: &AtomicU64) -> u64 {
        let tag = seg.wrapping_add(1);
        let h = hash_seg(seg);
        for p in 0..PROBE {
            let s = &self.slots[(h + p) & (TABLE_SLOTS - 1)];
            let k = s.key.load(Ordering::Relaxed);
            if k == tag {
                return s.bump(epoch, decays);
            }
            if k == 0 {
                if s.key.compare_exchange(0, tag, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
                    s.epoch.store(epoch, Ordering::Relaxed);
                    return s.bump(epoch, decays);
                }
                // Lost the claim race; the winner may be us by another
                // thread's hand or a different segment — re-check.
                if s.key.load(Ordering::Relaxed) == tag {
                    return s.bump(epoch, decays);
                }
            }
        }
        0 // probe window saturated: no signal, never a stall
    }
}

/// An owned snapshot of the placement activity counters, for export
/// (`ObsReport` / `obs_report.json`) and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementSnapshot {
    /// Migrations scheduled (a counter crossed the threshold and claimed
    /// the single-flight slot).
    pub migrations_proposed: u64,
    /// Migrations that executed: a replica was created at the reader.
    pub migrations_executed: u64,
    /// Retirement proposals the replication floor blocked: idle replicas
    /// existed beyond the LRU window, but deleting any would drop the
    /// file below its `min_replicas`.
    pub migrations_vetoed_floor: u64,
    /// Idle replicas retired by the §3.1 LRU extra-replica deletion.
    pub replicas_retired: u64,
    /// Per-slot counter decays applied (epoch rollovers observed).
    pub decay_epochs: u64,
}

/// The always-on placement signal and activity counters: per-server
/// access tables plus relaxed atomic tallies, independent of the
/// `trace`/`stats` config switches exactly like the rest of the obs
/// layer — live hosting disables the stats registry, and the migration
/// signal must keep flowing regardless.
#[derive(Debug)]
pub struct PlacementCore {
    tables: Vec<AccessTable>,
    /// See [`PlacementSnapshot::migrations_proposed`].
    pub migrations_proposed: AtomicU64,
    /// See [`PlacementSnapshot::migrations_executed`].
    pub migrations_executed: AtomicU64,
    /// See [`PlacementSnapshot::migrations_vetoed_floor`].
    pub migrations_vetoed_floor: AtomicU64,
    /// See [`PlacementSnapshot::replicas_retired`].
    pub replicas_retired: AtomicU64,
    /// See [`PlacementSnapshot::decay_epochs`].
    pub decay_epochs: AtomicU64,
}

impl PlacementCore {
    /// Tables and counters for a cell of `n_servers`.
    pub fn new(n_servers: usize) -> Self {
        PlacementCore {
            tables: (0..n_servers).map(|_| AccessTable::new()).collect(),
            migrations_proposed: AtomicU64::new(0),
            migrations_executed: AtomicU64::new(0),
            migrations_vetoed_floor: AtomicU64::new(0),
            replicas_retired: AtomicU64::new(0),
            decay_epochs: AtomicU64::new(0),
        }
    }

    /// Records one remote (forwarded) read of `seg` entering at
    /// `server`, decayed to `epoch`, and returns the new count. Wait-free.
    pub fn record_remote_read(&self, server: NodeId, seg: SegmentId, epoch: u64) -> u64 {
        match self.tables.get(server.index()) {
            Some(t) => t.record(seg.0, epoch, &self.decay_epochs),
            None => 0,
        }
    }

    /// The current decayed remote-read count for (server, seg) as of
    /// `epoch`, without recording (tests and diagnostics).
    pub fn remote_reads(&self, server: NodeId, seg: SegmentId, epoch: u64) -> u64 {
        self.tables.get(server.index()).and_then(|t| t.slot_of(seg.0)).map_or(0, |s| s.peek(epoch))
    }

    /// A point-in-time copy of the activity counters.
    pub fn snapshot(&self) -> PlacementSnapshot {
        PlacementSnapshot {
            migrations_proposed: self.migrations_proposed.load(Ordering::Relaxed),
            migrations_executed: self.migrations_executed.load(Ordering::Relaxed),
            migrations_vetoed_floor: self.migrations_vetoed_floor.load(Ordering::Relaxed),
            replicas_retired: self.replicas_retired.load(Ordering::Relaxed),
            decay_epochs: self.decay_epochs.load(Ordering::Relaxed),
        }
    }
}

impl Cluster {
    /// The current placement epoch: protocol time quantized by
    /// `placement_epoch`. Counters decay when their slot's epoch lags
    /// this.
    pub(crate) fn placement_epoch_now(&self) -> u64 {
        self.now().as_micros() / self.cfg.placement_epoch.as_micros().max(1)
    }

    /// Records a forwarded read of `key` that entered at `via` (always
    /// on), and — when `opt_placement` is enabled and the decayed count
    /// crosses the threshold — schedules one deferred migration that
    /// grows a replica at `via`.
    pub(crate) fn observe_remote_read(&self, via: NodeId, key: ReplicaKey) {
        let n = self.obs.placement.record_remote_read(via, key.0, self.placement_epoch_now());
        if self.cfg.opt_placement && n >= self.cfg.placement_threshold {
            self.schedule_migration(via, key);
        }
    }

    /// Queues one deferred migration of `key` toward `reader`.
    /// Single-flighted per (server, file) and due-gated one damping
    /// window out, exactly like read-repair: a burst of forwarded reads
    /// arms one move, not one per read.
    pub(crate) fn schedule_migration(&self, reader: NodeId, key: ReplicaKey) {
        if self.server(reader).replicas.contains(&key) {
            return; // already placed (or raced with a fill)
        }
        if self.server(reader).migrations.insert(key, ()).is_some() {
            return; // a migration for this placement is already in flight
        }
        self.obs.placement.migrations_proposed.fetch_add(1, Ordering::Relaxed);
        self.events.push(
            self.now() + self.cfg.lazy_apply_delay,
            Pending::MigrateReplica { server: reader, key },
        );
        self.stats.incr("core/placement/migrations_scheduled");
    }

    /// The deferred migration handler: creates a replica of `key` at
    /// `reader` from a durable stable copy via the §3.1 regeneration
    /// path, then retires idle extras elsewhere (floor-respecting).
    ///
    /// The migration stands down (releasing the single-flight claim so
    /// the next forwarded read re-arms it) when the destination crashed,
    /// already holds a replica, or no stable source is reachable. While
    /// the file's write stream is active it instead re-queues itself for
    /// the next damping window — a replica copied mid-stream would lag
    /// by the next buffered update and serve nothing.
    pub(crate) fn migrate_replica(&self, reader: NodeId, key: ReplicaKey) {
        if !self.net.is_up(reader) || self.server(reader).replicas.contains(&key) {
            self.server(reader).migrations.remove(&key);
            return;
        }
        let holder = self.find_reachable_token_holder(reader, key);
        if let Some(h) = holder {
            let streaming =
                self.server(h).streams.get(&key).map(|s| s.group_unstable).unwrap_or(false);
            if streaming {
                // Keep the claim: one parked move waits out the stream.
                self.events.push(
                    self.now() + self.cfg.lazy_apply_delay,
                    Pending::MigrateReplica { server: reader, key },
                );
                return;
            }
        }
        self.server(reader).migrations.remove(&key);
        let src = holder
            .filter(|&h| h != reader && self.server(h).replicas.contains(&key))
            .or_else(|| {
                self.reachable_replica_holders(reader, key).into_iter().find(|&h| {
                    h != reader
                        && self
                            .server(h)
                            .replicas
                            .with_ref(&key, |r| r.map(|r| r.is_stable()).unwrap_or(false))
                })
            });
        let Some(src) = src else {
            return; // no durable source in reach; a later read re-arms us
        };
        self.generate_replica_now(src, key, reader);
        if !self.server(reader).replicas.contains(&key) {
            return; // transfer failed (unreachable, vanished source)
        }
        self.obs.placement.migrations_executed.fetch_add(1, Ordering::Relaxed);
        self.stats.incr("core/placement/migrations_executed");
        // The retire half: now that the reader serves locally, drop
        // whatever nobody reads — delete_extra_replicas enforces the
        // LRU window and the min_replicas floor, and accounts the veto
        // when the floor blocks an otherwise-idle candidate.
        if let Some(th) = holder {
            self.delete_extra_replicas(th, key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_decay_by_elapsed_epochs() {
        let p = PlacementCore::new(1);
        let s0 = NodeId(0);
        let seg = SegmentId(7);
        for _ in 0..10 {
            p.record_remote_read(s0, seg, 0);
        }
        assert_eq!(p.remote_reads(s0, seg, 0), 10);
        // One epoch later the count halves before the new sample lands.
        assert_eq!(p.record_remote_read(s0, seg, 1), 6, "10 >> 1 = 5, plus this read");
        // Three more epochs shift the 6 away entirely.
        assert_eq!(p.record_remote_read(s0, seg, 4), 1, "6 >> 3 = 0, plus this read");
        assert_eq!(p.snapshot().decay_epochs, 2, "two rollovers observed");
        // Peeking at a future epoch decays the view without recording.
        assert_eq!(p.remote_reads(s0, seg, 5), 0);
        assert_eq!(p.remote_reads(s0, seg, 4), 1);
    }

    #[test]
    fn tables_are_per_server_and_bounds_checked() {
        let p = PlacementCore::new(2);
        let seg = SegmentId(3);
        assert_eq!(p.record_remote_read(NodeId(0), seg, 0), 1);
        assert_eq!(p.remote_reads(NodeId(1), seg, 0), 0, "server 1's table is independent");
        // A server id past the cell neither records nor panics.
        assert_eq!(p.record_remote_read(NodeId(9), seg, 0), 0);
        assert_eq!(p.remote_reads(NodeId(9), seg, 0), 0);
    }

    #[test]
    fn saturated_probe_window_drops_signal_instead_of_blocking() {
        let t = AccessTable::new();
        let decays = AtomicU64::new(0);
        // Fill far more distinct segments than the table holds: every
        // record either lands in a slot or returns 0, never panics or
        // misattributes to another live key.
        let mut recorded = 0u64;
        for seg in 0..(TABLE_SLOTS as u64 * 2) {
            if t.record(seg, 0, &decays) > 0 {
                recorded += 1;
            }
        }
        assert!(recorded >= TABLE_SLOTS as u64 / 2, "most records land");
        assert!(recorded <= TABLE_SLOTS as u64, "no more keys than slots");
    }

    #[test]
    fn concurrent_recording_never_loses_the_hot_file() {
        let p = std::sync::Arc::new(PlacementCore::new(1));
        let seg = SegmentId(42);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        p.record_remote_read(NodeId(0), seg, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        assert_eq!(p.remote_reads(NodeId(0), seg, 0), 4000, "same-epoch records are exact");
    }
}
