//! Segment lifecycle: create and delete (§5.1).

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{group_name, Cluster, OpResult};
use crate::error::{DeceitError, DeceitResult};
use crate::params::FileParams;
use crate::replica::Replica;
use crate::server::SegmentId;
use crate::token::WriteToken;
use crate::version::VersionPair;

impl Cluster {
    /// Creates a new zero-length segment via server `via` ("Create has no
    /// arguments and simply returns a handle for a new segment of zero
    /// length", §5.1).
    ///
    /// The creating server becomes the first replica holder and the write
    /// token holder; the file group is created with it as sole member.
    pub fn create(&mut self, via: NodeId) -> DeceitResult<OpResult<SegmentId>> {
        self.create_with_params(via, FileParams::default())
    }

    /// Creates a segment with explicit initial parameters.
    pub fn create_with_params(
        &mut self,
        via: NodeId,
        params: FileParams,
    ) -> DeceitResult<OpResult<SegmentId>> {
        self.client_op(via, |c| {
            let seg = c.alloc_segment();
            let major = c.alloc_major();
            let now = c.now();
            let key = (seg, major);
            let replica = Replica::new(major, params, now);
            let token = WriteToken::new(VersionPair::initial(major), via);
            // Replica metadata and token state are non-volatile (§3.5);
            // the handle map entry is implicit in the disk key.
            let mut latency = SimDuration::ZERO;
            latency += c.cfg.disk.write_cost(replica.data.len() + 64);
            c.server_mut(via).replicas.put_sync(key, replica);
            c.server_mut(via).tokens.put_sync(key, token);
            let gid =
                c.groups.create(&group_name(seg), via).expect("fresh segment name cannot collide");
            c.server_mut(via).group_cache.insert(seg, gid);
            c.branch_table(seg); // materialize an empty history tree
            c.stats.incr("core/creates");
            // Replication beyond one replica happens when the user raises
            // min_replicas (method 2) — default params need nothing more.
            if params.min_replicas > 1 {
                c.schedule_min_replica_fill(via, key);
            }
            Ok((seg, latency))
        })
    }

    /// Deletes a segment: every reachable replica and token is destroyed
    /// and the file group dissolved ("Delete takes a segment handle and
    /// deletes all storage allocated for it", §5.1).
    ///
    /// Unreachable replica holders garbage-collect their stale replicas
    /// when they next recover (the cluster remembers deleted segments the
    /// way real servers keep deletion records in their handle maps).
    pub fn delete(&mut self, via: NodeId, seg: SegmentId) -> DeceitResult<OpResult<()>> {
        self.client_op(via, |c| {
            let (gid, mut latency) = c.locate_group(via, seg);
            let has_any = c.server(via).has_segment(seg) || gid.is_some();
            if !has_any {
                return Err(DeceitError::NoSuchSegment(seg));
            }
            // One round to the file group: destroy replicas and tokens.
            if let Some(gid) = gid {
                let members: Vec<NodeId> = c
                    .groups
                    .view(gid)
                    .map(|v| v.members.iter().copied().collect())
                    .unwrap_or_default();
                let outcome = broadcast_round(&mut c.net, via, members.clone(), 40, 16, "delete");
                latency += outcome.full_latency();
                for m in members {
                    if m != via && !outcome.heard_from(m) {
                        continue; // unreachable: cleaned up at recovery
                    }
                    c.destroy_segment_at(m, seg);
                    let _ = c.groups.leave(gid, m);
                }
            } else {
                c.destroy_segment_at(via, seg);
            }
            c.deleted.insert(seg);
            c.stats.incr("core/deletes");
            Ok(((), latency))
        })
    }

    /// Removes every local replica and token of `seg` at `server`.
    pub(crate) fn destroy_segment_at(&mut self, server: NodeId, seg: SegmentId) {
        let keys: Vec<_> =
            self.server(server).replicas.keys().filter(|(s, _)| *s == seg).copied().collect();
        for k in keys {
            self.server_mut(server).replicas.delete_sync(&k);
            self.server_mut(server).tokens.delete_sync(&k);
            self.server_mut(server).receivers.remove(&k);
            self.server_mut(server).streams.remove(&k);
        }
        self.server_mut(server).group_cache.remove(&seg);
    }
}
