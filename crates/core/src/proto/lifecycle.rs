//! Segment lifecycle: create and delete (§5.1).

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{group_name, Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::params::FileParams;
use crate::replica::Replica;
use crate::server::SegmentId;
use crate::token::WriteToken;
use crate::version::VersionPair;

impl Cluster {
    /// Creates a new zero-length segment via server `via` ("Create has no
    /// arguments and simply returns a handle for a new segment of zero
    /// length", §5.1).
    ///
    /// The creating server becomes the first replica holder and the write
    /// token holder; the file group is created with it as sole member.
    pub fn create(&mut self, via: NodeId) -> DeceitResult<OpResult<SegmentId>> {
        self.create_with_params(via, FileParams::default())
    }

    /// Creates a segment with explicit initial parameters.
    pub fn create_with_params(
        &mut self,
        via: NodeId,
        params: FileParams,
    ) -> DeceitResult<OpResult<SegmentId>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_create(via, params))
    }

    fn do_create(&self, via: NodeId, params: FileParams) -> DeceitResult<(SegmentId, SimDuration)> {
        let seg = self.alloc_segment();
        let major = self.alloc_major();
        let now = self.now();
        let key = (seg, major);
        let replica = Replica::new(major, params, now);
        let token = WriteToken::new(VersionPair::initial(major), via);
        // Replica metadata and token state are non-volatile (§3.5);
        // the handle map entry is implicit in the disk key.
        let mut latency = SimDuration::ZERO;
        latency += self.cfg.disk.write_cost(replica.data.len() + 64);
        self.server(via).replicas.put_sync(key, replica);
        self.server(via).tokens.put_sync(key, token);
        // A fresh segment id should make collision impossible, but the
        // group service is another process in spirit — if it refuses,
        // surface unavailability instead of tearing the server down.
        let gid = match self.groups.create(&group_name(seg), via) {
            Ok(gid) => gid,
            Err(_) => self.groups.lookup(&group_name(seg)).ok_or(DeceitError::Unavailable(seg))?,
        };
        self.server(via).group_cache.insert(seg, gid);
        self.with_branch_table(seg, |_| ()); // materialize an empty history tree
        self.stats.incr("core/creates");
        // Replication beyond one replica happens when the user raises
        // min_replicas (method 2) — default params need nothing more.
        if params.min_replicas > 1 {
            self.schedule_min_replica_fill(via, key);
        }
        Ok((seg, latency))
    }

    /// Deletes a segment: every reachable replica and token is destroyed
    /// and the file group dissolved ("Delete takes a segment handle and
    /// deletes all storage allocated for it", §5.1).
    ///
    /// Unreachable replica holders garbage-collect their stale replicas
    /// when they next recover (the cluster remembers deleted segments the
    /// way real servers keep deletion records in their handle maps).
    pub fn delete(&mut self, via: NodeId, seg: SegmentId) -> DeceitResult<OpResult<()>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_delete(via, seg))
    }

    fn do_delete(&self, via: NodeId, seg: SegmentId) -> DeceitResult<((), SimDuration)> {
        let (gid, mut latency) = self.locate_group(via, seg);
        let has_any = self.server(via).has_segment(seg) || gid.is_some();
        if !has_any {
            return Err(DeceitError::NoSuchSegment(seg));
        }
        // One round to the file group: destroy replicas and tokens.
        if let Some(gid) = gid {
            let members: Vec<NodeId> = self.groups.members_vec(gid).unwrap_or_default();
            let outcome = broadcast_round(&self.net, via, members.clone(), 40, 16, "delete");
            latency += outcome.full_latency();
            for m in members {
                if m != via && !outcome.heard_from(m) {
                    continue; // unreachable: cleaned up at recovery
                }
                self.destroy_segment_at(m, seg);
                let _ = self.groups.leave(gid, m);
            }
        } else {
            self.destroy_segment_at(via, seg);
        }
        self.mark_deleted(seg);
        self.stats.incr("core/deletes");
        Ok(((), latency))
    }

    /// Removes every local replica and token of `seg` at `server`, along
    /// with all of the file's volatile per-key state (stream state,
    /// delivery buffers, outbound pipeline buffers, read leases, repair
    /// flags — segment ids are never reused, so anything left behind
    /// would leak forever). The lease is removed *first*, before the
    /// replica it covers disappears, matching the remove-before-the-fact
    /// discipline every lease invalidation site follows.
    pub(crate) fn destroy_segment_at(&self, server: NodeId, seg: SegmentId) {
        let srv = self.server(server);
        for major in srv.replicas.majors_of(seg) {
            let k = (seg, major);
            if srv.leases.remove(&k).is_some() {
                self.emit_from(
                    server,
                    crate::trace_events::ProtocolEvent::LeaseRevoked { seg, on: server },
                );
            }
            srv.replicas.delete_sync(&k);
            srv.tokens.delete_sync(&k);
            srv.drop_receiver(&k);
            srv.streams.remove(&k);
            srv.outbound.remove(&k);
            srv.repairs.remove(&k);
        }
        // Tokens can exist for majors whose local replica is already
        // gone; sweep those too.
        for major in srv.tokens.majors_of(seg) {
            let k = (seg, major);
            srv.leases.remove(&k);
            srv.tokens.delete_sync(&k);
            srv.streams.remove(&k);
            srv.outbound.remove(&k);
            srv.repairs.remove(&k);
        }
        srv.group_cache.remove(&seg);
    }
}
