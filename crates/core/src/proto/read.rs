//! Reads: local service, forwarding, and the stable-replica search.
//!
//! §2.1: "If a client request arrives for a file at a server which does
//! not have that file, the request is automatically forwarded to a server
//! that has the file. The reply is propagated backwards along the same
//! path." §3.4: while a file is unstable, "all file reads and inquiries
//! are forwarded to the token holder." §3.6 defines the recovery read
//! path when the token holder is unreachable.

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult};
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::ops::ReadData;
use crate::replica::ReplicaState;
use crate::server::{ReplicaKey, SegmentId};
use crate::trace_events::ProtocolEvent;

impl Cluster {
    /// Reads `count` bytes at `offset` from a segment via server `via`.
    ///
    /// `major` selects an explicit version (the `foo;3` syntax of §3.5);
    /// `None` reads the most recent available version.
    pub fn read(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<OpResult<ReadData>> {
        self.client_op(via, |c| c.do_read(via, seg, major, offset, count))
    }

    /// Attempts to serve a read with *shared* access only — the hot path
    /// a concurrent host runs under its shared cell lock, in parallel
    /// with other readers.
    ///
    /// Succeeds exactly when `via` is up and locally holds a stable
    /// replica of the requested version that no reachable server
    /// supersedes; every other case (forwarding, unstable replicas, the
    /// §3.6 stable-replica search) returns `None` so the caller falls
    /// back to the exclusive [`Cluster::read`], which remains the
    /// canonical path and the only one that mutates state. The fast path
    /// deliberately skips the bookkeeping the exclusive path performs —
    /// clock advance, stats, the replica's LRU access-time touch — none
    /// of which affect the served bytes.
    pub fn try_read_local(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> Option<OpResult<ReadData>> {
        if via.index() >= self.servers.len() || !self.net.is_up(via) {
            return None;
        }
        let srv = self.server(via);
        let major = match major {
            Some(m) => m,
            None => {
                let local = srv.latest_major(seg)?;
                // A newer major visible to the §3.2 location search
                // means the exclusive path must run: the search covers
                // reachable file-group members, so that is exactly the
                // set checked here (via the allocation-free per-server
                // group cache when it is warm). Without group knowledge,
                // fall back to scanning every reachable server —
                // strictly more conservative than the search.
                let newer_than_local = |s: NodeId| {
                    s != via
                        && self.net.reachable(via, s)
                        && self.server(s).latest_major(seg).is_some_and(|m| m > local)
                };
                let gid = srv
                    .group_cache
                    .get(&seg)
                    .copied()
                    .or_else(|| self.groups.lookup(&crate::cluster::group_name(seg)));
                let superseded = match gid.and_then(|g| self.groups.view(g).ok()) {
                    Some(view) => view.members.iter().copied().any(newer_than_local),
                    None => self.servers.iter().any(|s| newer_than_local(s.id)),
                };
                if superseded {
                    return None;
                }
                local
            }
        };
        let key = (seg, major);
        let replica = srv.replicas.get(&key)?;
        if !replica.is_stable() {
            return None;
        }
        // Feed the LRU: the access is recorded lock-free-ish in a side
        // buffer and applied to `last_access` at the next exclusive
        // entry, so a hot, concurrently-read replica does not look idle
        // to §3.1 extra-replica deletion.
        srv.note_read(key, self.now());
        Some(OpResult {
            value: ReadData {
                data: replica.data.read(offset, count),
                version: replica.version,
                segment_len: replica.data.len(),
                served_by: via,
            },
            latency: self.cfg.local_read,
        })
    }

    fn do_read(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let (key, mut latency) = self.resolve_key(via, seg, major)?;

        if self.server(via).replicas.contains(&key) {
            let state = self.server(via).replicas.get(&key).map(|r| r.state).unwrap();
            match state {
                ReplicaState::Stable => {
                    latency += self.cfg.local_read;
                    let data = self.serve_local(via, key, offset, count);
                    self.stats.incr("core/reads/local");
                    return Ok((data, latency));
                }
                ReplicaState::Unstable => {
                    // Forward to the token holder (§3.4).
                    return self.forward_to_token_holder(via, key, offset, count, latency);
                }
            }
        }

        // No local replica: forward to a reachable replica holder (§2.1),
        // preferring a stable one.
        let holders = self.reachable_replica_holders(via, key);
        let target = holders
            .iter()
            .copied()
            .filter(|&h| h != via)
            .find(|&h| self.server(h).replicas.get(&key).map(|r| r.is_stable()).unwrap_or(false))
            .or_else(|| holders.into_iter().find(|&h| h != via));
        let Some(target) = target else {
            return Err(DeceitError::Unavailable(seg));
        };

        // §3.1 method 4: migration — grow a local replica in the
        // background to speed future reads, whichever path serves this
        // request.
        let params = self.params_of(target, key);
        if params.migration {
            let at = self.now() + SimDuration::from_millis(1);
            self.events.push(at, Pending::GenerateReplica { holder: target, key, target: via });
        }

        // Forwarding servers join the file group and cache location
        // information (§3.2: the group includes servers that "cache only
        // timestamps or mode bits") — unless the file is in the §7
        // read-optimized mode, which keeps the reader population out of
        // the group so hot files do not inflate their update cost.
        if let Some((gid, _)) = self.group_members(seg) {
            if !params.read_optimized {
                self.ensure_member(gid, via);
            }
            self.server_mut(via).group_cache.insert(seg, gid);
        }

        // If the target's copy is unstable the chain continues to the
        // token holder from there.
        let target_unstable =
            self.server(target).replicas.get(&key).map(|r| !r.is_stable()).unwrap_or(false);
        if target_unstable {
            return self.forward_to_token_holder(via, key, offset, count, latency);
        }

        let rtt = self.round_trip(via, target, 32, count.min(8 * 1024))?;
        latency += rtt + self.cfg.local_read;
        let data = self.serve_local(target, key, offset, count);
        self.stats.incr("core/reads/forwarded");
        self.emit(ProtocolEvent::ReadForwarded { seg, from: via, to: target });

        Ok((data, latency))
    }

    /// Forwards a read to the token holder of `key`; if no token holder is
    /// reachable, falls back to the stable-replica search of §3.6.
    fn forward_to_token_holder(
        &mut self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let holder = self
            .server_ids()
            .into_iter()
            .find(|&s| self.server(s).holds_token(key) && self.net.reachable(via, s));
        match holder {
            Some(h) if h == via => {
                latency += self.cfg.local_read;
                let data = self.serve_local(via, key, offset, count);
                self.stats.incr("core/reads/local");
                Ok((data, latency))
            }
            Some(h) => {
                let rtt = self.round_trip(via, h, 32, count.min(8 * 1024))?;
                latency += rtt + self.cfg.local_read;
                let data = self.serve_local(h, key, offset, count);
                self.stats.incr("core/reads/forwarded_unstable");
                self.emit(ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: h });
                Ok((data, latency))
            }
            None => self.stable_replica_search(via, key, offset, count, latency),
        }
    }

    /// §3.6 ("Stability Notification in the Presence of Failure"):
    /// "In order to respond to a read, s must locate a stable replica. s
    /// produces a stable replica by broadcasting to f's file group to
    /// determine the state of all available replicas. If there is a stable
    /// replica at server s', the operation is forwarded to s'. If no
    /// replica is marked as stable, s forces the most up to date replica
    /// to be stable, and all obsolete replicas are destroyed."
    fn stable_replica_search(
        &mut self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        self.stats.incr("core/reads/stable_search");
        let members: Vec<NodeId> = self
            .group_members(key.0)
            .map(|(_, m)| m)
            .unwrap_or_else(|| self.all_replica_holders(key));
        let outcome = broadcast_round(&mut self.net, via, members, 40, 24, "state-inquiry");
        latency += outcome.full_latency();

        let mut available: Vec<(NodeId, crate::version::VersionPair, ReplicaState)> = Vec::new();
        for (m, _) in &outcome.replies {
            if let Some(r) = self.server(*m).replicas.get(&key) {
                available.push((*m, r.version, r.state));
            }
        }
        if self.server(via).replicas.contains(&key) && !outcome.heard_from(via) {
            let r = self.server(via).replicas.get(&key).unwrap();
            available.push((via, r.version, r.state));
        }
        if available.is_empty() {
            return Err(DeceitError::Unavailable(key.0));
        }

        let serve_from = if let Some((m, _, _)) =
            available.iter().find(|(_, _, st)| *st == ReplicaState::Stable)
        {
            *m
        } else {
            // Force the most up-to-date replica stable; destroy obsolete
            // ones.
            let (best, best_version, _) =
                *available.iter().max_by_key(|(_, v, _)| (v.sub, v.major)).unwrap();
            self.set_replica_state(best, key, ReplicaState::Stable);
            for (m, v, _) in &available {
                if *m != best && *v != best_version {
                    self.server_mut(*m).replicas.delete_sync(&key);
                    self.server_mut(*m).receivers.remove(&key);
                    self.emit(ProtocolEvent::ReplicaDeleted { seg: key.0, on: *m });
                    self.stats.incr("core/replicas/destroyed_obsolete");
                }
            }
            best
        };

        if serve_from != via {
            let rtt = self.round_trip(via, serve_from, 32, count.min(8 * 1024))?;
            latency += rtt;
            self.emit(ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: serve_from });
        }
        latency += self.cfg.local_read;
        let data = self.serve_local(serve_from, key, offset, count);
        Ok((data, latency))
    }

    /// Serves a read from a server's local replica, updating its access
    /// time (LRU input).
    pub(crate) fn serve_local(
        &mut self,
        server: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
    ) -> ReadData {
        let now = self.now();
        let replica = self
            .server(server)
            .replicas
            .get(&key)
            .cloned()
            .expect("serve_local requires a replica");
        // Touch last-access without forcing a durable metadata write.
        let mut touched = replica.clone();
        touched.last_access = now;
        self.server_mut(server).replicas.put_async(key, touched);
        ReadData {
            data: replica.data.read(offset, count),
            version: replica.version,
            segment_len: replica.data.len(),
            served_by: server,
        }
    }

    /// One request/response exchange between two servers.
    pub(crate) fn round_trip(
        &mut self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> DeceitResult<SimDuration> {
        let out = self
            .net
            .send(from, to, req_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(to))?;
        let back = self
            .net
            .send(to, from, resp_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(from))?;
        Ok(out + back)
    }
}
