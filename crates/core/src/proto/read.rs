//! Reads: local service, forwarding, and the stable-replica search.
//!
//! §2.1: "If a client request arrives for a file at a server which does
//! not have that file, the request is automatically forwarded to a server
//! that has the file. The reply is propagated backwards along the same
//! path." §3.4: while a file is unstable, "all file reads and inquiries
//! are forwarded to the token holder." §3.6 defines the recovery read
//! path when the token holder is unreachable.

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::ops::ReadData;
use crate::replica::ReplicaState;
use crate::server::{ReplicaKey, SegmentId};
use crate::trace_events::ProtocolEvent;

impl Cluster {
    /// Reads `count` bytes at `offset` from a segment via server `via`.
    ///
    /// `major` selects an explicit version (the `foo;3` syntax of §3.5);
    /// `None` reads the most recent available version.
    pub fn read(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<OpResult<ReadData>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_read(via, seg, major, offset, count))
    }

    /// The sharded-path twin of [`Cluster::read`]: the full read protocol
    /// (forwarding, group joins, clock accounting included) under the
    /// caller's ring locks, which must cover `seg`'s slot. Used by the
    /// sharded mutation twins' read-modify-write loops and the sharded
    /// read path; the lock-free fast path is [`Cluster::try_read_local`].
    pub fn read_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<OpResult<ReadData>> {
        debug_assert!(slots.contains(&self.slot_of(seg)), "ring locks must cover the read file");
        self.client_op_scoped(via, OpScope::Slots(slots), |c| {
            c.do_read(via, seg, major, offset, count)
        })
    }

    /// Attempts to serve a read with *shared* access only — the hot path
    /// a concurrent host runs under its shared cell lock, in parallel
    /// with other readers.
    ///
    /// Succeeds exactly when `via` is up and locally holds a stable
    /// replica of the requested version that no reachable server
    /// supersedes; every other case (forwarding, unstable replicas, the
    /// §3.6 stable-replica search) returns `None` so the caller falls
    /// back to the exclusive [`Cluster::read`], which remains the
    /// canonical path. The fast path deliberately skips the bookkeeping
    /// the full path performs — clock advance, stats, the replica's LRU
    /// access-time touch — none of which affect the served bytes.
    pub fn try_read_local(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> Option<OpResult<ReadData>> {
        if via.index() >= self.servers.len() || !self.net.is_up(via) {
            return None;
        }
        let srv = self.server(via);
        let major = match major {
            Some(m) => m,
            None => self.local_current_major(via, seg)?,
        };
        let key = (seg, major);
        // One slot-lock acquisition covers the stability check and the
        // copy-out together, so a concurrent mutation is seen either
        // entirely or not at all — never a torn replica.
        let served = srv.replicas.with_ref(&key, |r| {
            let r = r?;
            if !r.is_stable() {
                return None;
            }
            Some(ReadData {
                data: r.data.read(offset, count),
                version: r.version,
                segment_len: r.data.len(),
                served_by: via,
            })
        })?;
        // Feed the LRU: the access is recorded in a side buffer and
        // folded into `last_access` at the next engine entry covering
        // this slot, so a hot, concurrently-read replica does not look
        // idle to §3.1 extra-replica deletion.
        srv.replicas.note_read(key, self.now());
        Some(OpResult { value: served, latency: self.cfg.local_read })
    }

    /// The newest major of `seg` stored at `via`, provided no reachable
    /// file-group member knows a newer one — the "is my copy current"
    /// probe both local fast paths share. The check covers exactly the
    /// set the §3.2 location search would cover (via the per-server
    /// group cache when warm); without group knowledge it conservatively
    /// scans every reachable server.
    fn local_current_major(&self, via: NodeId, seg: SegmentId) -> Option<u64> {
        let srv = self.server(via);
        let local = srv.latest_major(seg)?;
        let newer_than_local = |s: NodeId| {
            s != via
                && self.net.reachable(via, s)
                && self.server(s).latest_major(seg).is_some_and(|m| m > local)
        };
        let gid = srv
            .group_cache
            .get(&seg)
            .or_else(|| self.groups.lookup(&crate::cluster::group_name(seg)));
        let superseded = match gid.and_then(|g| self.groups.members_vec(g)) {
            Some(members) => members.into_iter().any(newer_than_local),
            None => self.servers.iter().any(|s| newer_than_local(s.id)),
        };
        if superseded {
            None
        } else {
            Some(local)
        }
    }

    /// The token holder's lean read: if `via` holds the write token for
    /// the current version of `seg`, its replica is the primary copy and
    /// serves reads even while unstable (§3.4 forwards *other* servers'
    /// reads to the holder — the holder answers directly). Used by the
    /// sharded mutation path's read-modify-write loop, under the file's
    /// ring lock, where the holder-reads-own-file case is the steady
    /// state of a write stream. `None` falls back to the full path.
    pub fn try_read_primary(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> Option<OpResult<ReadData>> {
        if via.index() >= self.servers.len() || !self.net.is_up(via) {
            return None;
        }
        let major = match major {
            Some(m) => m,
            None => self.local_current_major(via, seg)?,
        };
        let key = (seg, major);
        let srv = self.server(via);
        if !srv.holds_token(key) {
            return None;
        }
        let served = srv.replicas.with_ref(&key, |r| {
            let r = r?;
            Some(ReadData {
                data: r.data.read(offset, count),
                version: r.version,
                segment_len: r.data.len(),
                served_by: via,
            })
        })?;
        srv.replicas.note_read(key, self.now());
        Some(OpResult { value: served, latency: self.cfg.local_read })
    }

    fn do_read(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let (key, mut latency) = self.resolve_key(via, seg, major)?;

        if self.server(via).replicas.contains(&key) {
            let state = self.server(via).replicas.with_ref(&key, |r| r.map(|r| r.state)).unwrap();
            match state {
                ReplicaState::Stable => {
                    latency += self.cfg.local_read;
                    let data = self.serve_local(via, key, offset, count);
                    self.stats.incr("core/reads/local");
                    return Ok((data, latency));
                }
                ReplicaState::Unstable => {
                    // Forward to the token holder (§3.4).
                    return self.forward_to_token_holder(via, key, offset, count, latency);
                }
            }
        }

        // No local replica: forward to a reachable replica holder (§2.1),
        // preferring a stable one.
        let holders = self.reachable_replica_holders(via, key);
        let target = holders
            .iter()
            .copied()
            .filter(|&h| h != via)
            .find(|&h| {
                self.server(h)
                    .replicas
                    .with_ref(&key, |r| r.map(|r| r.is_stable()).unwrap_or(false))
            })
            .or_else(|| holders.into_iter().find(|&h| h != via));
        let Some(target) = target else {
            return Err(DeceitError::Unavailable(seg));
        };

        // §3.1 method 4: migration — grow a local replica in the
        // background to speed future reads, whichever path serves this
        // request.
        let params = self.params_of(target, key);
        if params.migration {
            let at = self.now() + SimDuration::from_millis(1);
            self.events.push(at, Pending::GenerateReplica { holder: target, key, target: via });
        }

        // Forwarding servers join the file group and cache location
        // information (§3.2: the group includes servers that "cache only
        // timestamps or mode bits") — unless the file is in the §7
        // read-optimized mode, which keeps the reader population out of
        // the group so hot files do not inflate their update cost.
        if let Some((gid, _)) = self.group_members(seg) {
            if !params.read_optimized {
                self.ensure_member(gid, via);
            }
            self.server(via).group_cache.insert(seg, gid);
        }

        // If the target's copy is unstable the chain continues to the
        // token holder from there.
        let target_unstable = self
            .server(target)
            .replicas
            .with_ref(&key, |r| r.map(|r| !r.is_stable()).unwrap_or(false));
        if target_unstable {
            return self.forward_to_token_holder(via, key, offset, count, latency);
        }

        let rtt = self.round_trip(via, target, 32, count.min(8 * 1024))?;
        latency += rtt + self.cfg.local_read;
        let data = self.serve_local(target, key, offset, count);
        self.stats.incr("core/reads/forwarded");
        self.emit(ProtocolEvent::ReadForwarded { seg, from: via, to: target });

        Ok((data, latency))
    }

    /// Forwards a read to the token holder of `key`; if no token holder is
    /// reachable, falls back to the stable-replica search of §3.6.
    fn forward_to_token_holder(
        &self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let holder = self
            .servers
            .iter()
            .find(|s| s.holds_token(key) && self.net.reachable(via, s.id))
            .map(|s| s.id);
        match holder {
            Some(h) if h == via => {
                latency += self.cfg.local_read;
                let data = self.serve_local(via, key, offset, count);
                self.stats.incr("core/reads/local");
                Ok((data, latency))
            }
            Some(h) => {
                let rtt = self.round_trip(via, h, 32, count.min(8 * 1024))?;
                latency += rtt + self.cfg.local_read;
                let data = self.serve_local(h, key, offset, count);
                self.stats.incr("core/reads/forwarded_unstable");
                self.emit(ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: h });
                Ok((data, latency))
            }
            None => self.stable_replica_search(via, key, offset, count, latency),
        }
    }

    /// §3.6 ("Stability Notification in the Presence of Failure"):
    /// "In order to respond to a read, s must locate a stable replica. s
    /// produces a stable replica by broadcasting to f's file group to
    /// determine the state of all available replicas. If there is a stable
    /// replica at server s', the operation is forwarded to s'. If no
    /// replica is marked as stable, s forces the most up to date replica
    /// to be stable, and all obsolete replicas are destroyed."
    fn stable_replica_search(
        &self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        self.stats.incr("core/reads/stable_search");
        let members: Vec<NodeId> = self
            .group_members(key.0)
            .map(|(_, m)| m)
            .unwrap_or_else(|| self.all_replica_holders(key));
        let outcome = broadcast_round(&self.net, via, members, 40, 24, "state-inquiry");
        latency += outcome.full_latency();

        let mut available: Vec<(NodeId, crate::version::VersionPair, ReplicaState)> = Vec::new();
        for (m, _) in &outcome.replies {
            if let Some((v, st)) =
                self.server(*m).replicas.with_ref(&key, |r| r.map(|r| (r.version, r.state)))
            {
                available.push((*m, v, st));
            }
        }
        if !outcome.heard_from(via) {
            if let Some((v, st)) =
                self.server(via).replicas.with_ref(&key, |r| r.map(|r| (r.version, r.state)))
            {
                available.push((via, v, st));
            }
        }
        if available.is_empty() {
            return Err(DeceitError::Unavailable(key.0));
        }

        let serve_from = if let Some((m, _, _)) =
            available.iter().find(|(_, _, st)| *st == ReplicaState::Stable)
        {
            *m
        } else {
            // Force the most up-to-date replica stable; destroy obsolete
            // ones.
            let (best, best_version, _) =
                *available.iter().max_by_key(|(_, v, _)| (v.sub, v.major)).unwrap();
            self.set_replica_state(best, key, ReplicaState::Stable);
            for (m, v, _) in &available {
                if *m != best && *v != best_version {
                    self.server(*m).replicas.delete_sync(&key);
                    self.server(*m).drop_receiver(&key);
                    self.emit(ProtocolEvent::ReplicaDeleted { seg: key.0, on: *m });
                    self.stats.incr("core/replicas/destroyed_obsolete");
                }
            }
            best
        };

        if serve_from != via {
            let rtt = self.round_trip(via, serve_from, 32, count.min(8 * 1024))?;
            latency += rtt;
            self.emit(ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: serve_from });
        }
        latency += self.cfg.local_read;
        let data = self.serve_local(serve_from, key, offset, count);
        Ok((data, latency))
    }

    /// Serves a read from a server's local replica, updating its access
    /// time (LRU input).
    pub(crate) fn serve_local(
        &self,
        server: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
    ) -> ReadData {
        let now = self.now();
        // Copy the requested range out under one slot-lock acquisition;
        // the LRU access-time touch goes through the side buffer (the
        // same mechanism the lock-free fast path uses) and folds in at
        // the next engine entry covering this slot — no value clone, no
        // forced metadata write.
        let srv = self.server(server);
        let data = srv.replicas.with_ref(&key, |r| {
            let r = r.expect("serve_local requires a replica");
            ReadData {
                data: r.data.read(offset, count),
                version: r.version,
                segment_len: r.data.len(),
                served_by: server,
            }
        });
        srv.replicas.note_read(key, now);
        data
    }

    /// One request/response exchange between two servers.
    pub(crate) fn round_trip(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> DeceitResult<SimDuration> {
        let out = self
            .net
            .send(from, to, req_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(to))?;
        let back = self
            .net
            .send(to, from, resp_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(from))?;
        Ok(out + back)
    }
}
