//! Reads: local service, forwarding, and the stable-replica search.
//!
//! §2.1: "If a client request arrives for a file at a server which does
//! not have that file, the request is automatically forwarded to a server
//! that has the file. The reply is propagated backwards along the same
//! path." §3.4: while a file is unstable, "all file reads and inquiries
//! are forwarded to the token holder." §3.6 defines the recovery read
//! path when the token holder is unreachable.

use std::sync::atomic;

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::ops::ReadData;
use crate::replica::ReplicaState;
use crate::server::{ReplicaKey, SegmentId};
use crate::trace_events::ProtocolEvent;
use crate::version::VersionRelation;

/// Materializes one served read from a replica borrow — the single
/// copy-out every local read path shares, so the shape of a served read
/// (range copy, version, total length, serving node) cannot drift
/// between the fast paths and the full path.
fn copy_out(
    r: &crate::replica::Replica,
    served_by: NodeId,
    offset: usize,
    count: usize,
) -> ReadData {
    ReadData {
        data: r.data.read(offset, count),
        version: r.version,
        segment_len: r.data.len(),
        served_by,
    }
}

impl Cluster {
    /// Reads `count` bytes at `offset` from a segment via server `via`.
    ///
    /// `major` selects an explicit version (the `foo;3` syntax of §3.5);
    /// `None` reads the most recent available version.
    pub fn read(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<OpResult<ReadData>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_read(via, seg, major, offset, count))
    }

    /// The sharded-path twin of [`Cluster::read`]: the full read protocol
    /// (forwarding, group joins, clock accounting included) under the
    /// caller's ring locks, which must cover `seg`'s slot. Used by the
    /// sharded mutation twins' read-modify-write loops and the sharded
    /// read path; the lock-free fast path is [`Cluster::try_read_local`].
    pub fn read_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<OpResult<ReadData>> {
        debug_assert!(slots.contains(&self.slot_of(seg)), "ring locks must cover the read file");
        self.client_op_scoped(via, OpScope::Slots(slots), |c| {
            c.do_read(via, seg, major, offset, count)
        })
    }

    /// Attempts to serve a read with *shared* access only — the hot path
    /// a concurrent host runs under its shared cell lock, in parallel
    /// with other readers.
    ///
    /// Succeeds exactly when `via` is up and locally holds a stable
    /// replica of the requested version that no reachable server
    /// supersedes; every other case (forwarding, unstable replicas, the
    /// §3.6 stable-replica search) returns `None` so the caller falls
    /// back to the exclusive [`Cluster::read`], which remains the
    /// canonical path. The fast path deliberately skips the bookkeeping
    /// the full path performs — clock advance, stats, the replica's LRU
    /// access-time touch — none of which affect the served bytes.
    pub fn try_read_local(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> Option<OpResult<ReadData>> {
        if via.index() >= self.servers.len() || !self.net.is_up(via) {
            return None;
        }
        let srv = self.server(via);
        let major = match major {
            Some(m) => m,
            None => self.local_current_major(via, seg)?,
        };
        let key = (seg, major);
        // One slot-lock acquisition covers the stability check, the
        // copy-out, *and* the LRU touch together: a concurrent mutation
        // is seen either entirely or not at all — never a torn replica —
        // and the access lands in the touch buffer (folded into
        // `last_access` at the next engine entry covering this slot, so
        // a hot, concurrently-read replica does not look idle to §3.1
        // extra-replica deletion) without a second lock round.
        let served = srv.replicas.with_ref_served(&key, self.now(), |r| {
            let r = r?;
            if !r.is_stable() {
                return None;
            }
            Some(copy_out(r, via, offset, count))
        });
        let served = match served {
            Some(d) => d,
            // Unstable (or no) local replica: the holder-local read lease
            // may still answer — the §3.4 "reads are forwarded to the
            // token holder" case where `via` *is* the holder.
            None => self.try_read_leased(via, key, offset, count)?,
        };
        Some(OpResult { value: served, latency: self.cfg.local_read })
    }

    /// The lease half of the lock-free fast path
    /// (`ClusterConfig::opt_read_leases`): serves `via`'s own *unstable*
    /// replica when `via` is the token holder mid-stream, at exactly the
    /// acked durable prefix named by the published [`crate::ReadLease`].
    /// §3.4 forwards every other server's reads to the token holder while
    /// a file is unstable; the holder answers directly — this is that
    /// answer, without ring locks.
    ///
    /// Correctness rests on a seqlock-style sandwich. The lease is read
    /// before and after the replica copy-out, the copied replica must
    /// carry exactly the leased version, and every invalidation site
    /// removes the lease *before* the fact it asserts stops holding
    /// (token movement removes it before the token leaves, stabilize
    /// when the stream ends, a crash clears it with the volatile state).
    /// So if the second read still observes the identical lease, the
    /// token had not begun moving when the bytes were copied — the copy
    /// is the primary's acked prefix. Any change, and the caller falls
    /// back to the locked path.
    fn try_read_leased(
        &self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
    ) -> Option<ReadData> {
        if !self.cfg.opt_read_leases {
            return None;
        }
        let srv = self.server(via);
        let lease = srv.leases.get(&key)?;
        let served = srv.replicas.with_ref_served(&key, self.now(), |r| {
            let r = r?;
            if r.version != lease.version {
                // Mid-write window (applied but not yet re-leased), or a
                // stale lease a new stream has not refreshed: decline.
                self.obs.lease_validation_failures.fetch_add(1, atomic::Ordering::Relaxed);
                return None;
            }
            Some(copy_out(r, via, offset, count))
        })?;
        if srv.leases.get(&key) != Some(lease) {
            self.obs.lease_validation_failures.fetch_add(1, atomic::Ordering::Relaxed);
            return None;
        }
        Some(served)
    }

    /// The read lease `server` currently publishes for `key`, if any
    /// (diagnostics and tests; the serving path is
    /// [`Cluster::try_read_local`]).
    pub fn read_lease_version(
        &self,
        server: NodeId,
        key: ReplicaKey,
    ) -> Option<crate::version::VersionPair> {
        self.server(server).leases.get(&key).map(|l| l.version)
    }

    /// The newest major of `seg` stored at `via`, provided no reachable
    /// file-group member knows a newer one — the "is my copy current"
    /// probe both local fast paths share. The check covers exactly the
    /// set the §3.2 location search would cover (via the per-server
    /// group cache when warm); without group knowledge it conservatively
    /// scans every reachable server.
    fn local_current_major(&self, via: NodeId, seg: SegmentId) -> Option<u64> {
        let srv = self.server(via);
        let local = srv.latest_major(seg)?;
        // Single-major fast path: a second major for `seg` can only come
        // from §3.5 token generation, which records the new major's
        // branch point *before* installing any replica of it — so an
        // empty branch table proves no server anywhere holds a newer
        // major, and the membership scan below (a handful of lock
        // rounds per read on the lock-free path) is provably redundant.
        if self.branches.with(&seg, |t| t.map_or(0, |t| t.branch_count())) == 0 {
            return Some(local);
        }
        let newer_than_local = |s: NodeId| {
            s != via
                && self.net.reachable(via, s)
                && self.server(s).latest_major(seg).is_some_and(|m| m > local)
        };
        let gid = srv
            .group_cache
            .get(&seg)
            .or_else(|| self.groups.lookup(&crate::cluster::group_name(seg)));
        // Allocation-free membership scan: the predicate runs under the
        // group table's read lock and only touches leaf locks (network
        // reachability, replica slot locks), never the table itself.
        let superseded = match gid.and_then(|g| self.groups.any_member(g, newer_than_local)) {
            Some(superseded) => superseded,
            None => self.servers.iter().any(|s| newer_than_local(s.id)),
        };
        if superseded {
            None
        } else {
            Some(local)
        }
    }

    /// The token holder's lean read: if `via` holds the write token for
    /// the current version of `seg`, its replica is the primary copy and
    /// serves reads even while unstable (§3.4 forwards *other* servers'
    /// reads to the holder — the holder answers directly). Used by the
    /// sharded mutation path's read-modify-write loop, under the file's
    /// ring lock, where the holder-reads-own-file case is the steady
    /// state of a write stream. `None` falls back to the full path.
    pub fn try_read_primary(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> Option<OpResult<ReadData>> {
        if via.index() >= self.servers.len() || !self.net.is_up(via) {
            return None;
        }
        let major = match major {
            Some(m) => m,
            None => self.local_current_major(via, seg)?,
        };
        let key = (seg, major);
        let srv = self.server(via);
        if !srv.holds_token(key) {
            return None;
        }
        let served = srv
            .replicas
            .with_ref_served(&key, self.now(), |r| Some(copy_out(r?, via, offset, count)))?;
        Some(OpResult { value: served, latency: self.cfg.local_read })
    }

    fn do_read(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
        offset: usize,
        count: usize,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let (key, mut latency) = self.resolve_key(via, seg, major)?;

        // One probe decides the local case: a `contains` check followed by
        // a separate state read would race a concurrent replica deletion
        // (LRU extra-replica deletion, recovery destruction) between the
        // two lookups. A vanished replica simply falls through to the
        // no-local-replica forwarding below.
        let local_state = self.server(via).replicas.with_ref(&key, |r| r.map(|r| r.state));
        match local_state {
            Some(ReplicaState::Stable) => {
                latency += self.cfg.local_read;
                let data = self
                    .serve_local(via, key, offset, count)
                    .ok_or(DeceitError::Unavailable(key.0))?;
                self.stats.incr("core/reads/local");
                return Ok((data, latency));
            }
            Some(ReplicaState::Unstable) => {
                // Forward to the token holder (§3.4) — and, when enabled,
                // queue one targeted catch-up so a laggard the stabilize
                // horizon missed stops costing every read a forward.
                self.schedule_read_repair(via, key);
                return self.forward_to_token_holder(via, key, offset, count, latency);
            }
            None => {}
        }

        // No local replica: forward to a reachable replica holder (§2.1),
        // preferring a stable one.
        let holders = self.reachable_replica_holders(via, key);
        let target = holders
            .iter()
            .copied()
            .filter(|&h| h != via)
            .find(|&h| {
                self.server(h)
                    .replicas
                    .with_ref(&key, |r| r.map(|r| r.is_stable()).unwrap_or(false))
            })
            .or_else(|| holders.into_iter().find(|&h| h != via));
        let Some(target) = target else {
            return Err(DeceitError::Unavailable(seg));
        };

        // §3.1 method 4: migration — grow a local replica in the
        // background to speed future reads, whichever path serves this
        // request. Files param-marked `migration` migrate eagerly on the
        // first forwarded read; everything else feeds the always-on
        // access counters, and `opt_placement` grows the replica once
        // this server has demonstrably kept serving remote reads for the
        // file (due-gated, single-flighted — see `placement`).
        let params = self.params_of(target, key);
        if params.migration {
            let at = self.now() + SimDuration::from_millis(1);
            self.events.push(at, Pending::GenerateReplica { holder: target, key, target: via });
        } else {
            self.observe_remote_read(via, key);
        }

        // Forwarding servers join the file group and cache location
        // information (§3.2: the group includes servers that "cache only
        // timestamps or mode bits") — unless the file is in the §7
        // read-optimized mode, which keeps the reader population out of
        // the group so hot files do not inflate their update cost.
        if let Some((gid, _)) = self.group_members(seg) {
            if !params.read_optimized {
                self.ensure_member(gid, via);
            }
            self.server(via).group_cache.insert(seg, gid);
        }

        // If the target's copy is unstable the chain continues to the
        // token holder from there — and the target is a repair candidate
        // for the same reason `via`'s own unstable replica is above.
        let target_unstable = self
            .server(target)
            .replicas
            .with_ref(&key, |r| r.map(|r| !r.is_stable()).unwrap_or(false));
        if target_unstable {
            self.schedule_read_repair(target, key);
            return self.forward_to_token_holder(via, key, offset, count, latency);
        }

        let rtt = self.round_trip(via, target, 32, count.min(8 * 1024))?;
        latency += rtt + self.cfg.local_read;
        let data =
            self.serve_local(target, key, offset, count).ok_or(DeceitError::Unavailable(key.0))?;
        self.stats.incr("core/reads/forwarded");
        self.emit_from(via, ProtocolEvent::ReadForwarded { seg, from: via, to: target });

        Ok((data, latency))
    }

    /// Forwards a read to the token holder of `key`; if no token holder is
    /// reachable, falls back to the stable-replica search of §3.6.
    fn forward_to_token_holder(
        &self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        let holder = self
            .servers
            .iter()
            .find(|s| s.holds_token(key) && self.net.reachable(via, s.id))
            .map(|s| s.id);
        match holder {
            Some(h) if h == via => {
                latency += self.cfg.local_read;
                let data = self
                    .serve_local(via, key, offset, count)
                    .ok_or(DeceitError::Unavailable(key.0))?;
                self.stats.incr("core/reads/local");
                Ok((data, latency))
            }
            Some(h) => {
                let rtt = self.round_trip(via, h, 32, count.min(8 * 1024))?;
                latency += rtt + self.cfg.local_read;
                let data = self
                    .serve_local(h, key, offset, count)
                    .ok_or(DeceitError::Unavailable(key.0))?;
                self.stats.incr("core/reads/forwarded_unstable");
                self.emit_from(via, ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: h });
                Ok((data, latency))
            }
            None => self.stable_replica_search(via, key, offset, count, latency),
        }
    }

    /// §3.6 ("Stability Notification in the Presence of Failure"):
    /// "In order to respond to a read, s must locate a stable replica. s
    /// produces a stable replica by broadcasting to f's file group to
    /// determine the state of all available replicas. If there is a stable
    /// replica at server s', the operation is forwarded to s'. If no
    /// replica is marked as stable, s forces the most up to date replica
    /// to be stable, and all obsolete replicas are destroyed."
    fn stable_replica_search(
        &self,
        via: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
        mut latency: SimDuration,
    ) -> DeceitResult<(ReadData, SimDuration)> {
        self.stats.incr("core/reads/stable_search");
        let members: Vec<NodeId> = self
            .group_members(key.0)
            .map(|(_, m)| m)
            .unwrap_or_else(|| self.all_replica_holders(key));
        let outcome = broadcast_round(&self.net, via, members, 40, 24, "state-inquiry");
        latency += outcome.full_latency();

        let mut available: Vec<(NodeId, crate::version::VersionPair, ReplicaState)> = Vec::new();
        for (m, _) in &outcome.replies {
            if let Some((v, st)) =
                self.server(*m).replicas.with_ref(&key, |r| r.map(|r| (r.version, r.state)))
            {
                available.push((*m, v, st));
            }
        }
        if !outcome.heard_from(via) {
            if let Some((v, st)) =
                self.server(via).replicas.with_ref(&key, |r| r.map(|r| (r.version, r.state)))
            {
                available.push((via, v, st));
            }
        }
        if available.is_empty() {
            return Err(DeceitError::Unavailable(key.0));
        }

        let serve_from = if let Some((m, _, _)) =
            available.iter().find(|(_, _, st)| *st == ReplicaState::Stable)
        {
            *m
        } else {
            // Force the most up-to-date replica stable; destroy obsolete
            // ones. "Most up to date" is a history-tree judgment: where
            // majors diverge the branch table decides (a descendant
            // history embeds every update of its ancestor, whatever the
            // subversion counters say — an old-major replica with many
            // subversions must still lose to a newer-major descendant),
            // and only incomparable histories fall back to the highest
            // `(major, sub)` pair, never to subversion-first ordering.
            let table = self.branch_table_snapshot(key.0);
            // `available` was checked non-empty above, so `max_by` can
            // only miss if that invariant breaks — fail soft to the
            // same "nothing to serve" error rather than panic.
            let (best, best_version, _) = *available
                .iter()
                .max_by(|(_, va, _), (_, vb, _)| match table.relation(*va, *vb) {
                    VersionRelation::Ancestor => std::cmp::Ordering::Less,
                    VersionRelation::Descendant => std::cmp::Ordering::Greater,
                    VersionRelation::Equal => std::cmp::Ordering::Equal,
                    VersionRelation::Incomparable => (va.major, va.sub).cmp(&(vb.major, vb.sub)),
                })
                .ok_or(DeceitError::Unavailable(key.0))?;
            for (m, v, _) in &available {
                if *v == best_version {
                    // The winner — and every survivor already at the
                    // winning version. Marking only the winner would
                    // leave equal-version replicas unstable, sending the
                    // very next read through this forcing path again.
                    self.set_replica_state(*m, key, ReplicaState::Stable);
                } else {
                    // The canonical destruction path: lease removed
                    // *before* the replica it covers disappears, plus the
                    // outbound/repair cleanup a hand-rolled delete would
                    // miss.
                    self.destroy_replica(*m, key);
                    self.emit_from(*m, ProtocolEvent::ReplicaDeleted { seg: key.0, on: *m });
                    self.stats.incr("core/replicas/destroyed_obsolete");
                }
            }
            best
        };

        if serve_from != via {
            let rtt = self.round_trip(via, serve_from, 32, count.min(8 * 1024))?;
            latency += rtt;
            self.emit_from(
                via,
                ProtocolEvent::ReadForwarded { seg: key.0, from: via, to: serve_from },
            );
        }
        latency += self.cfg.local_read;
        let data = self
            .serve_local(serve_from, key, offset, count)
            .ok_or(DeceitError::Unavailable(key.0))?;
        Ok((data, latency))
    }

    /// Queues one targeted catch-up for a lagging, unstable replica at
    /// `laggard` (`ClusterConfig::opt_read_repair`). Single-flighted per
    /// (server, file): the read that met the laggard forwards as usual,
    /// and one deferred repair makes the *next* reads local again —
    /// instead of every read forwarding until the next stabilize round
    /// happens to cover the laggard.
    pub(crate) fn schedule_read_repair(&self, laggard: NodeId, key: ReplicaKey) {
        if !self.cfg.opt_read_repair {
            return;
        }
        // The holder's replica is the primary: nothing to repair it from.
        if self.server(laggard).holds_token(key) {
            return;
        }
        if self.server(laggard).repairs.insert(key, ()).is_some() {
            return; // a repair for this replica is already in flight
        }
        // Due-gated like a pipeline drain: the due time is a damping
        // window, not a validity condition — fired instantly, an active
        // stream would turn every forwarded read into a schedule/no-op
        // cycle on the pump.
        self.events.push(
            self.now() + self.cfg.lazy_apply_delay,
            Pending::ReadRepair { server: laggard, key },
        );
        self.stats.incr("core/reads/repairs_scheduled");
    }

    /// The deferred read-repair handler: state-transfers `laggard` from
    /// the durable primary and marks it stable — one member's worth of
    /// the §3.4 stabilize round, on demand.
    ///
    /// The repair stands down (without rescheduling itself; the next
    /// forwarded read re-arms it) whenever the world moved on while it
    /// was queued: the laggard crashed, was destroyed, or became the
    /// holder; no token holder is reachable (token loss belongs to the
    /// §3.6 machinery); or the stream is still active — mid-stream the
    /// group is *deliberately* unstable, a catch-up would lag again by
    /// the next buffered update, and marking the laggard stable would
    /// let it skip the next mark-unstable round and serve stale reads.
    pub(crate) fn read_repair(&self, laggard: NodeId, key: ReplicaKey) {
        self.server(laggard).repairs.remove(&key);
        if !self.net.is_up(laggard) || self.server(laggard).holds_token(key) {
            return;
        }
        let lag = self.server(laggard).replicas.with_ref(&key, |r| r.map(|r| (r.version, r.state)));
        let Some((lag_version, lag_state)) = lag else {
            return; // destroyed while the repair was queued
        };
        let Some(holder) = self.find_reachable_token_holder(laggard, key) else {
            return;
        };
        let streaming =
            self.server(holder).streams.get(&key).map(|s| s.group_unstable).unwrap_or(false);
        if streaming {
            return;
        }
        let Some(token_version) =
            self.server(holder).tokens.with_ref(&key, |t| t.map(|t| t.version))
        else {
            return; // token destroyed between the scan and the read
        };
        if lag_version == token_version {
            // Data already current — only the stable marker is missing
            // (a stabilize broadcast that never reached this member).
            if lag_state != ReplicaState::Stable {
                self.set_replica_state(laggard, key, ReplicaState::Stable);
                self.stats.incr("core/reads/repairs");
                self.emit_from(laggard, ProtocolEvent::ReadRepaired { seg: key.0, on: laggard });
            }
            return;
        }
        // Catch up from the primary, exactly as the stabilize round
        // catches up a lagging member (§3.4): whole-state transfer, then
        // stable. The primary must itself be settled at the token's
        // version — it always is outside a stream, but a token freshly
        // passed mid-recovery may not be; a later read re-arms us.
        let Some(src) = self.server(holder).replicas.get(&key) else {
            return;
        };
        if src.version != token_version {
            return;
        }
        let blast = self.cfg.blast;
        if deceit_isis::xfer::transfer_state(
            &self.net,
            &blast,
            holder,
            laggard,
            src.data.len() as u64,
            "replica-xfer",
        )
        .duration()
        .is_none()
        {
            return; // unreachable after all; nothing changed
        }
        // `get` above already returned an owned copy of the primary's
        // replica: refresh its metadata in place rather than cloning the
        // whole segment a second time.
        let mut fresh = src;
        fresh.last_access = self.now();
        fresh.state = ReplicaState::Stable;
        self.server(laggard).replicas.put_sync(key, fresh);
        self.server(laggard).drop_receiver(&key);
        self.stats.incr("core/reads/repairs");
        self.emit_from(laggard, ProtocolEvent::ReadRepaired { seg: key.0, on: laggard });
    }

    /// Serves a read from a server's local replica, updating its access
    /// time (LRU input). Returns `None` when the replica vanished since
    /// the caller's probe (LRU deletion, recovery destruction) — every
    /// caller treats that as the file being unavailable here, not a bug.
    pub(crate) fn serve_local(
        &self,
        server: NodeId,
        key: ReplicaKey,
        offset: usize,
        count: usize,
    ) -> Option<ReadData> {
        let now = self.now();
        // Copy the requested range out and record the LRU access-time
        // touch under one slot-lock acquisition; the touch goes through
        // the side buffer (the same mechanism the lock-free fast path
        // uses) and folds in at the next engine entry covering this slot
        // — no value clone, no forced metadata write.
        let srv = self.server(server);
        srv.replicas.with_ref_served(&key, now, |r| Some(copy_out(r?, server, offset, count)))
    }

    /// One request/response exchange between two servers.
    pub(crate) fn round_trip(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> DeceitResult<SimDuration> {
        let out = self
            .net
            .send(from, to, req_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(to))?;
        let back = self
            .net
            .send(to, from, resp_bytes, "forward")
            .latency()
            .ok_or(DeceitError::PeerUnreachable(from))?;
        Ok(out + back)
    }
}
