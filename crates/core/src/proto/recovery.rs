//! Crash recovery and partition reconciliation (§3.6).

use deceit_net::NodeId;

use crate::cluster::{Cluster, ConflictRecord};
use crate::server::{ReplicaKey, SegmentId};
use crate::trace_events::ProtocolEvent;
use crate::version::VersionRelation;

impl Cluster {
    /// Brings a crashed server back and runs its recovery protocol.
    ///
    /// §3.6 "Non-token Replica Crash": "When a server s recovers from a
    /// crash, it contacts the token holder for each file f such that s has
    /// a replica but no token for f. … If s finds that it has an obsolete
    /// replica of f, s destroys it."
    ///
    /// §3.6 "Token Crash": "When s' recovers, it will be notified about
    /// the creation of the new version during its recovery protocol. s'
    /// will note that the new version is a direct descendent of the old
    /// version and destroy the old version and all of its replicas."
    pub fn recover_server(&mut self, id: NodeId) {
        self.net.recover(id);
        self.stats.incr("cluster/recoveries");
        self.emit_from(id, ProtocolEvent::RecoveryStarted { server: id });

        // Garbage-collect replicas of segments deleted while down (the
        // handle map records deletions; §2.1 file handles stay valid only
        // "as long as a replica of the file exists").
        let stale: Vec<SegmentId> = self
            .server(id)
            .replicas
            .keys()
            .into_iter()
            .map(|(s, _)| s)
            .filter(|s| self.is_deleted(*s))
            .collect();
        for seg in stale {
            self.destroy_segment_at(id, seg);
        }

        let keys: Vec<ReplicaKey> = self.server(id).replicas.keys();
        for key in keys {
            if self.server(id).holds_token(key) {
                self.recover_held_token(id, key);
            } else {
                self.recover_plain_replica(id, key);
            }
        }
        self.emit_from(id, ProtocolEvent::RecoveryCompleted { server: id });
    }

    /// Recovery for a replica without a local token.
    fn recover_plain_replica(&mut self, id: NodeId, key: ReplicaKey) {
        let my_version = match self.server(id).replicas.get(&key) {
            Some(r) => r.version,
            None => return,
        };
        let (seg, _) = key;

        // Contact the token holder for this version. The second lookup is
        // deliberately fallible: a crash that landed between a sharded
        // replica install and its (write-behind) token update can leave a
        // server that answers the holder scan with no stored token — that
        // is a token-loss case, not a protocol invariant, so it falls
        // through to the no-holder path below instead of panicking.
        if let Some(holder) = self.find_reachable_token_holder(id, key) {
            if let Some(token_version) = self.server(holder).tokens.get(&key).map(|t| t.version) {
                let table = self.branch_table_snapshot(seg);
                match table.relation(my_version, token_version) {
                    VersionRelation::Equal => {
                        // Up to date: rejoin the group.
                        if let Some((gid, _)) = self.group_members(seg) {
                            self.ensure_member(gid, id);
                        }
                    }
                    VersionRelation::Ancestor => {
                        // Obsolete: destroy; "no update will be lost" since
                        // our history is a prefix of the token's.
                        self.destroy_replica(id, key);
                        self.remove_from_holders(holder, key, id);
                        // The holder may now be under-replicated.
                        self.schedule_min_replica_fill(holder, key);
                    }
                    VersionRelation::Descendant | VersionRelation::Incomparable => {
                        // The token holder is *behind* us or divergent —
                        // can only happen after pathological failures
                        // ("Disastrous Failure"); surface as a conflict.
                        self.log_conflict(seg, my_version.major, token_version.major);
                    }
                }
                return;
            }
            self.stats.incr("core/recovery/holder_without_token");
        }

        // No token holder for our major: a new version may have been
        // created while we were down.
        let others = self.newer_version_tokens(id, key.0, key.1);
        for (other_major, relation) in others {
            match relation {
                VersionRelation::Ancestor => {
                    // Our version is an ancestor of a live newer version:
                    // destroy the old version (Token Crash scenario).
                    self.destroy_replica(id, key);
                    self.emit_from(
                        id,
                        ProtocolEvent::ObsoleteDestroyed { seg: key.0, on: id, major: key.1 },
                    );
                    return;
                }
                VersionRelation::Incomparable => {
                    self.log_conflict(key.0, key.1, other_major);
                }
                _ => {}
            }
        }
    }

    /// Recovery for a version whose token this server holds.
    fn recover_held_token(&mut self, id: NodeId, key: ReplicaKey) {
        let my_version = match self.server(id).tokens.get(&key) {
            Some(t) => t.version,
            None => return,
        };
        let others = self.newer_version_tokens(id, key.0, key.1);
        for (other_major, relation) in others {
            match relation {
                VersionRelation::Ancestor => {
                    // A descendant version was created while we were down:
                    // destroy the old version and all of its replicas.
                    let holders = self.all_replica_holders(key);
                    for h in holders {
                        if self.net.reachable(id, h) {
                            self.destroy_replica(h, key);
                        }
                    }
                    self.server(id).tokens.delete_sync(&key);
                    self.emit_from(
                        id,
                        ProtocolEvent::ObsoleteDestroyed { seg: key.0, on: id, major: key.1 },
                    );
                    self.stats.incr("core/recovery/versions_destroyed");
                    return;
                }
                VersionRelation::Incomparable => {
                    // Concurrent updates on both sides of a partition
                    // (§3.6 "the hard case"): both versions are kept and
                    // the conflict is logged for the user.
                    self.log_conflict(key.0, key.1, other_major);
                }
                _ => {}
            }
        }
        let _ = my_version;

        // The token survived the crash, so this server is still the
        // primary — but the crash cancelled its in-flight propagation
        // (deferred applies, and any buffered outbound stream of the
        // write pipeline), so group members may lag the token's version.
        // Run a stabilize round now: caught-up replicas are marked stable,
        // laggards are regenerated from the primary by state transfer
        // (§3.1, §3.4) — the recovery path a mid-stream holder crash must
        // take instead of leaving replicas waiting on updates that no
        // longer exist.
        if self.server(id).holds_token(key) {
            self.mark_stable_round(id, key);
        }
    }

    /// Heals-time reconciliation across the whole cell: every pair of
    /// live tokens for the same segment is compared; obsolete ancestors
    /// are destroyed ("It will appear to the clients as if the token had
    /// actually been moved, and the updates were propagated very slowly"),
    /// incomparable pairs are logged as conflicts.
    pub(crate) fn reconcile_all(&mut self) {
        let mut token_index: Vec<(SegmentId, u64, NodeId)> = Vec::new();
        for s in self.server_ids() {
            for key in self.server(s).tokens.keys() {
                token_index.push((key.0, key.1, s));
            }
        }
        token_index.sort();
        for i in 0..token_index.len() {
            for j in (i + 1)..token_index.len() {
                let (seg_a, major_a, server_a) = token_index[i];
                let (seg_b, major_b, server_b) = token_index[j];
                if seg_a != seg_b || major_a == major_b {
                    continue;
                }
                let va = match self.server(server_a).tokens.get(&(seg_a, major_a)) {
                    Some(t) => t.version,
                    None => continue, // destroyed earlier in this pass
                };
                let vb = match self.server(server_b).tokens.get(&(seg_b, major_b)) {
                    Some(t) => t.version,
                    None => continue,
                };
                let table = self.branch_table_snapshot(seg_a);
                match table.relation(va, vb) {
                    VersionRelation::Ancestor => {
                        self.destroy_version_everywhere(server_a, (seg_a, major_a));
                    }
                    VersionRelation::Descendant => {
                        self.destroy_version_everywhere(server_b, (seg_b, major_b));
                    }
                    VersionRelation::Incomparable => {
                        self.log_conflict(seg_a, major_a, major_b);
                    }
                    VersionRelation::Equal => {}
                }
            }
        }
        // Second pass: replica currency. A partition acts like a crash for
        // the servers cut off (§2.3); on heal each replica re-establishes
        // contact with its token holder, the same way crash recovery does.
        // A replica that lags the token — or cannot reach any holder to
        // prove currency — is conservatively marked unstable, which routes
        // reads through the stable-replica machinery (§3.4, §3.6). In ISIS
        // terms this models the view change that excluded the partitioned
        // member and the state transfer its rejoin requires.
        let mut catchups: Vec<(NodeId, ReplicaKey)> = Vec::new();
        for s in self.server_ids() {
            if !self.net.is_up(s) {
                continue;
            }
            for key in self.server(s).replicas.keys() {
                if self.server(s).holds_token(key) {
                    continue;
                }
                let Some(my_version) =
                    self.server(s).replicas.with_ref(&key, |r| r.map(|r| r.version))
                else {
                    continue; // destroyed earlier in this reconciliation
                };
                // Both lookups are fallible: the holder scan and the token
                // read are separated by destruction earlier in this pass,
                // and a crash can leave a scan hit with no stored token.
                let holder_and_version = self
                    .find_reachable_token_holder(s, key)
                    .and_then(|h| self.server(h).tokens.get(&key).map(|t| (h, t.version)));
                match holder_and_version {
                    Some((h, tv)) => {
                        let table = self.branch_table_snapshot(key.0);
                        if table.is_ancestor(my_version, tv) {
                            self.set_replica_state(s, key, crate::replica::ReplicaState::Unstable);
                            if !catchups.contains(&(h, key)) {
                                catchups.push((h, key));
                            }
                        }
                    }
                    None => {
                        // Cannot prove currency: may be inconsistent.
                        self.set_replica_state(s, key, crate::replica::ReplicaState::Unstable);
                    }
                }
            }
        }
        // Holders with lagging replicas and no active write stream run a
        // stabilize round now, catching the laggards up by state transfer.
        for (holder, key) in catchups {
            let streaming =
                self.server(holder).streams.get(&key).map(|st| st.group_unstable).unwrap_or(false);
            if !streaming {
                self.mark_stable_round(holder, key);
            }
        }
        self.stats.incr("cluster/reconciliations");
    }

    /// Destroys one version (token + all reachable replicas).
    pub(crate) fn destroy_version_everywhere(&mut self, token_holder: NodeId, key: ReplicaKey) {
        for h in self.all_replica_holders(key) {
            if self.net.reachable(token_holder, h) {
                self.destroy_replica(h, key);
            }
        }
        self.server(token_holder).tokens.delete_sync(&key);
        self.emit_from(
            token_holder,
            ProtocolEvent::ObsoleteDestroyed { seg: key.0, on: token_holder, major: key.1 },
        );
        self.stats.incr("core/recovery/versions_destroyed");
    }

    /// Removes one replica locally, along with any outbound update
    /// buffer still queued against it (nothing left to propagate to),
    /// any read lease published on it, and any pending repair flag (the
    /// queued repair finds the replica gone and stands down).
    pub(crate) fn destroy_replica(&self, server: NodeId, key: ReplicaKey) {
        if self.server(server).leases.remove(&key).is_some() {
            self.emit_from(server, ProtocolEvent::LeaseRevoked { seg: key.0, on: server });
        }
        self.server(server).replicas.delete_sync(&key);
        self.server(server).drop_receiver(&key);
        self.server(server).outbound.remove(&key);
        self.server(server).repairs.remove(&key);
        self.stats.incr("core/recovery/replicas_destroyed");
    }

    /// Drops `gone` from a token's holder set.
    fn remove_from_holders(&self, holder: NodeId, key: ReplicaKey, gone: NodeId) {
        if let Some(mut token) = self.server(holder).tokens.get(&key) {
            token.holders.remove(&gone);
            self.server(holder).tokens.put_async(key, token);
            self.schedule_flush(holder, key.0);
        }
    }

    /// Finds a reachable server holding the token for exactly `key`.
    pub(crate) fn find_reachable_token_holder(
        &self,
        from: NodeId,
        key: ReplicaKey,
    ) -> Option<NodeId> {
        self.servers
            .iter()
            .find(|s| s.holds_token(key) && self.net.reachable(from, s.id))
            .map(|s| s.id)
    }

    /// Live tokens for other majors of `seg`, with each one's relation to
    /// our version `(seg, my_major)`'s *token-or-replica* version.
    fn newer_version_tokens(
        &self,
        from: NodeId,
        seg: SegmentId,
        my_major: u64,
    ) -> Vec<(u64, VersionRelation)> {
        let my_version = self
            .server(from)
            .tokens
            .get(&(seg, my_major))
            .map(|t| t.version)
            .or_else(|| self.server(from).replicas.get(&(seg, my_major)).map(|r| r.version));
        let Some(my_version) = my_version else {
            return Vec::new();
        };
        let table = self.branch_table_snapshot(seg);
        let mut out = Vec::new();
        for s in self.server_ids() {
            if !self.net.reachable(from, s) {
                continue;
            }
            for key in self.server(s).tokens.keys() {
                if key.0 == seg && key.1 != my_major {
                    // Fallible: the key list and the read are two lookups,
                    // and recovery may destroy tokens between them.
                    if let Some(v) = self.server(s).tokens.with_ref(&key, |t| t.map(|t| t.version))
                    {
                        out.push((key.1, table.relation(my_version, v)));
                    }
                }
            }
        }
        out
    }

    /// Records an incomparable-version conflict once per (segment, pair).
    pub(crate) fn log_conflict(&mut self, seg: SegmentId, a: u64, b: u64) {
        let majors = (a.min(b), a.max(b));
        if self.conflicts.iter().any(|c| c.seg == seg && c.majors == majors) {
            return;
        }
        let at = self.now();
        self.conflicts.push(ConflictRecord { seg, majors, at });
        self.stats.incr("core/conflicts");
        self.emit(ProtocolEvent::ConflictLogged { seg, majors });
    }
}
