//! Stability notification (§3.4).
//!
//! "Deceit provides global one-copy serializability with a stability
//! notification mechanism. Before a file can be modified, all members of
//! the file group are notified that the file is unstable. All available
//! replicas must be so notified before any updates can occur. … After
//! stability notification, all file reads and inquiries are forwarded to
//! the token holder. … After a short period of no write activity, the
//! token holder notifies all other members of the group that the file is
//! stable again."

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::Cluster;
use crate::replica::ReplicaState;
use crate::server::ReplicaKey;
use crate::trace_events::ProtocolEvent;

impl Cluster {
    /// Marks the file group unstable before a write stream begins.
    ///
    /// This is the overhead "incurred at the beginning … of a stream of
    /// updates" (§3.4): one full synchronous round — every available
    /// replica must acknowledge before any update may be distributed.
    pub(crate) fn mark_unstable_round(&mut self, holder: NodeId, key: ReplicaKey) -> SimDuration {
        let members: Vec<NodeId> =
            self.group_members(key.0).map(|(_, m)| m).unwrap_or_else(|| vec![holder]);
        let remote: Vec<NodeId> = members.into_iter().filter(|&m| m != holder).collect();
        let outcome = broadcast_round(&mut self.net, holder, remote, 40, 16, "mark-unstable");
        let mut acks = 1; // the holder itself
        for (m, _) in &outcome.replies {
            if self.set_replica_state(*m, key, ReplicaState::Unstable) {
                acks += 1;
            }
        }
        self.set_replica_state(holder, key, ReplicaState::Unstable);
        if let Some(stream) = self.server_mut(holder).streams.get_mut(&key) {
            stream.group_unstable = true;
        } else {
            let s = crate::server::StreamState { group_unstable: true, ..Default::default() };
            self.server_mut(holder).streams.insert(key, s);
        }
        self.stats.incr("core/stability/unstable_rounds");
        self.emit(ProtocolEvent::MarkedUnstable { seg: key.0, acks });
        outcome.full_latency()
    }

    /// The deferred stabilize check: if the write stream has been quiet
    /// for the stability timeout, mark the group stable again.
    pub(crate) fn stabilize_check(&mut self, holder: NodeId, key: ReplicaKey, epoch: u64) {
        if !self.net.is_up(holder) {
            return;
        }
        let Some(stream) = self.server(holder).streams.get(&key).copied() else {
            return;
        };
        // A newer write re-armed the timer; this check is stale.
        if stream.epoch != epoch || !stream.group_unstable {
            return;
        }
        if !self.server(holder).holds_token(key) {
            return;
        }
        self.mark_stable_round(holder, key);
    }

    /// Marks every reachable, caught-up replica stable; laggards are
    /// caught up with a state transfer first.
    pub(crate) fn mark_stable_round(&mut self, holder: NodeId, key: ReplicaKey) {
        let token_version = match self.server(holder).tokens.get(&key) {
            Some(t) => t.version,
            None => return,
        };
        let members: Vec<NodeId> =
            self.group_members(key.0).map(|(_, m)| m).unwrap_or_else(|| vec![holder]);
        let remote: Vec<NodeId> = members.into_iter().filter(|&m| m != holder).collect();
        let outcome = broadcast_round(&mut self.net, holder, remote, 40, 16, "mark-stable");
        for (m, _) in outcome.replies.clone() {
            let Some(replica) = self.server(m).replicas.get(&key).cloned() else {
                continue;
            };
            if replica.version == token_version {
                self.set_replica_state(m, key, ReplicaState::Stable);
            } else {
                // Missed updates (e.g. unreachable during part of the
                // stream): catch up from the primary, then stabilize.
                let src = self.server(holder).replicas.get(&key).cloned();
                if let Some(src) = src {
                    let blast = self.cfg.blast;
                    let _ = deceit_isis::xfer::transfer_state(
                        &mut self.net,
                        &blast,
                        holder,
                        m,
                        src.data.len() as u64,
                        "replica-xfer",
                    );
                    let now = self.now();
                    let mut fresh = crate::replica::Replica::cloned_from(&src, now);
                    fresh.state = ReplicaState::Stable;
                    self.server_mut(m).replicas.put_sync(key, fresh);
                    self.server_mut(m).receivers.remove(&key);
                    self.stats.incr("core/stability/catchups");
                }
            }
        }
        self.set_replica_state(holder, key, ReplicaState::Stable);
        if let Some(stream) = self.server_mut(holder).streams.get_mut(&key) {
            stream.group_unstable = false;
        }
        self.stats.incr("core/stability/stable_rounds");
        self.emit(ProtocolEvent::MarkedStable { seg: key.0 });
    }

    /// Sets a replica's stability marker (asynchronously durable — the
    /// marker is metadata written behind, §3.5). Returns whether the
    /// server held a replica.
    pub(crate) fn set_replica_state(
        &mut self,
        server: NodeId,
        key: ReplicaKey,
        state: ReplicaState,
    ) -> bool {
        let Some(mut replica) = self.server(server).replicas.get(&key).cloned() else {
            return false;
        };
        if replica.state != state {
            replica.state = state;
            self.server_mut(server).replicas.put_async(key, replica);
            self.schedule_flush(server);
        }
        true
    }
}
