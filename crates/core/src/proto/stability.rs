//! Stability notification (§3.4).
//!
//! "Deceit provides global one-copy serializability with a stability
//! notification mechanism. Before a file can be modified, all members of
//! the file group are notified that the file is unstable. All available
//! replicas must be so notified before any updates can occur. … After
//! stability notification, all file reads and inquiries are forwarded to
//! the token holder. … After a short period of no write activity, the
//! token holder notifies all other members of the group that the file is
//! stable again."

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::Cluster;
use crate::event::Pending;
use crate::replica::ReplicaState;
use crate::server::ReplicaKey;
use crate::trace_events::ProtocolEvent;

impl Cluster {
    /// Marks the file group unstable before a write stream begins.
    ///
    /// This is the overhead "incurred at the beginning … of a stream of
    /// updates" (§3.4): one full synchronous round — every available
    /// replica must acknowledge before any update may be distributed.
    pub(crate) fn mark_unstable_round(&self, holder: NodeId, key: ReplicaKey) -> SimDuration {
        let members: Vec<NodeId> =
            self.group_members(key.0).map(|(_, m)| m).unwrap_or_else(|| vec![holder]);
        let remote: Vec<NodeId> = members.into_iter().filter(|&m| m != holder).collect();
        let outcome = broadcast_round(&self.net, holder, remote, 40, 16, "mark-unstable");
        let mut acks = 1; // the holder itself
        for (m, _) in &outcome.replies {
            if self.set_replica_state(*m, key, ReplicaState::Unstable) {
                acks += 1;
            }
        }
        self.set_replica_state(holder, key, ReplicaState::Unstable);
        self.server(holder).streams.with_or_insert(key, Default::default, |stream| {
            stream.group_unstable = true;
        });
        self.stats.incr("core/stability/unstable_rounds");
        self.emit_from(holder, ProtocolEvent::MarkedUnstable { seg: key.0, acks });
        outcome.full_latency()
    }

    /// The deferred stabilize check: if the write stream has been quiet
    /// for the stability timeout, mark the group stable again. A stream
    /// keeps exactly one check in flight: a firing that finds newer
    /// writes re-arms itself at the newest quiet horizon instead of
    /// relying on a trail of per-write checks.
    pub(crate) fn stabilize_check(&self, holder: NodeId, key: ReplicaKey, epoch: u64) {
        let clear_scheduled = || {
            self.server(holder).streams.with(&key, |s| {
                if let Some(s) = s {
                    s.check_scheduled = false;
                }
            });
        };
        if !self.net.is_up(holder) {
            return; // stream state died with the crash; nothing to clear
        }
        let Some(stream) = self.server(holder).streams.get(&key) else {
            return;
        };
        if !stream.group_unstable {
            clear_scheduled();
            return;
        }
        // Newer writes landed since this check was scheduled: keep the
        // one pending check, moved out to the stream's new quiet horizon.
        if stream.epoch != epoch {
            self.events.push(
                stream.last_write + self.cfg.stability_timeout,
                Pending::StabilizeCheck { server: holder, key, epoch: stream.epoch },
            );
            return;
        }
        clear_scheduled();
        if !self.server(holder).holds_token(key) {
            return;
        }
        self.mark_stable_round(holder, key);
    }

    /// Marks every reachable, caught-up replica stable; laggards are
    /// caught up with a state transfer first.
    pub(crate) fn mark_stable_round(&self, holder: NodeId, key: ReplicaKey) {
        let token_version = match self.server(holder).tokens.get(&key) {
            Some(t) => t.version,
            None => return,
        };
        let members: Vec<NodeId> =
            self.group_members(key.0).map(|(_, m)| m).unwrap_or_else(|| vec![holder]);
        let remote: Vec<NodeId> = members.into_iter().filter(|&m| m != holder).collect();
        let outcome = broadcast_round(&self.net, holder, remote, 40, 16, "mark-stable");
        for (m, _) in outcome.replies.clone() {
            let Some(replica_version) =
                self.server(m).replicas.with_ref(&key, |r| r.map(|r| r.version))
            else {
                continue;
            };
            if replica_version == token_version {
                self.set_replica_state(m, key, ReplicaState::Stable);
            } else {
                // Missed updates (e.g. unreachable during part of the
                // stream): catch up from the primary, then stabilize.
                let src = self.server(holder).replicas.get(&key);
                if let Some(src) = src {
                    let blast = self.cfg.blast;
                    let _ = deceit_isis::xfer::transfer_state(
                        &self.net,
                        &blast,
                        holder,
                        m,
                        src.data.len() as u64,
                        "replica-xfer",
                    );
                    let now = self.now();
                    let mut fresh = crate::replica::Replica::cloned_from(&src, now);
                    fresh.state = ReplicaState::Stable;
                    // lint: allow(lease-discipline): this writes a *peer's* (`m`'s) replica to catch it up; the holder's lease — the only one this round can invalidate — guards the holder's replica, which stays untouched until the stable marker below
                    self.server(m).replicas.put_sync(key, fresh);
                    self.server(m).drop_receiver(&key);
                    self.stats.incr("core/stability/catchups");
                }
            }
        }
        self.set_replica_state(holder, key, ReplicaState::Stable);
        // The stream is over: retire its read lease. The stable marker
        // set above already routes the holder's reads through the
        // ordinary fast path, so the lease has nothing left to assert.
        if self.server(holder).leases.remove(&key).is_some() {
            self.emit_from(holder, ProtocolEvent::LeaseRevoked { seg: key.0, on: holder });
        }
        self.server(holder).streams.with(&key, |stream| {
            if let Some(stream) = stream {
                stream.group_unstable = false;
            }
        });
        self.stats.incr("core/stability/stable_rounds");
        self.emit_from(holder, ProtocolEvent::MarkedStable { seg: key.0 });
    }

    /// Sets a replica's stability marker (asynchronously durable — the
    /// marker is metadata written behind, §3.5). Returns whether the
    /// server held a replica. One atomic read-modify-write under the slot
    /// lock.
    pub(crate) fn set_replica_state(
        &self,
        server: NodeId,
        key: ReplicaKey,
        state: ReplicaState,
    ) -> bool {
        let mut held = false;
        let changed = self.server(server).replicas.update_async(&key, |replica| {
            held = true;
            if replica.state != state {
                replica.state = state;
                true
            } else {
                false
            }
        });
        if changed {
            self.schedule_flush(server, key.0);
        }
        held
    }
}
