//! File-group location and membership.
//!
//! §3.2: "a server needs to join a file group before it is allowed to
//! broadcast an update to, or have a replica of, that file. Joining a file
//! group is an expensive operation and may require a global search to find
//! a member of the group. This operation is one of the main obstacles to
//! scaling Deceit to an arbitrary size. Deceit limits global search to
//! within a Deceit cell."

use deceit_isis::{broadcast_round, GroupId};
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{group_name, Cluster};
use crate::error::{DeceitError, DeceitResult};
use crate::server::{ReplicaKey, SegmentId};

impl Cluster {
    /// Finds the file group of `seg` from `via`'s vantage point.
    ///
    /// Consults the volatile location cache first; on a miss performs the
    /// global search — a broadcast to every server in the cell — and
    /// caches the answer. Returns the group (if any member is reachable)
    /// and the time spent searching.
    pub(crate) fn locate_group(
        &self,
        via: NodeId,
        seg: SegmentId,
    ) -> (Option<GroupId>, SimDuration) {
        // Cache hit: verify the group still exists.
        if let Some(gid) = self.servers[via.index()].group_cache.get(&seg) {
            if self.groups.exists(gid) {
                self.stats.incr("locate/cache_hits");
                return (Some(gid), SimDuration::ZERO);
            }
            self.servers[via.index()].group_cache.remove(&seg);
        }
        // Local membership counts as knowledge.
        let gid = self.groups.lookup(&group_name(seg));
        if let Some(gid) = gid {
            if self.groups.is_member(gid, via) {
                self.servers[via.index()].group_cache.insert(seg, gid);
                return (Some(gid), SimDuration::ZERO);
            }
        }
        // Global search: one round to every other server in the cell.
        self.stats.incr("locate/global_searches");
        let others: Vec<NodeId> = self.server_ids().into_iter().filter(|&s| s != via).collect();
        let outcome = broadcast_round(&self.net, via, others, 32, 16, "locate");
        let latency = outcome.full_latency();
        let found = gid.filter(|&g| {
            // Only learnable if some member actually answered the search.
            self.groups
                .members_vec(g)
                .map(|ms| ms.iter().any(|m| *m == via || outcome.heard_from(*m)))
                .unwrap_or(false)
        });
        if let Some(g) = found {
            self.servers[via.index()].group_cache.insert(seg, g);
        }
        (found, latency)
    }

    /// The file group of `seg` as known at `via` — the cache-first probe
    /// the pipelined write path uses per update. A hit costs one slot
    /// lock; a miss repairs the cache from the cell-local group
    /// directory. No latency is charged: the token holder has already
    /// located (or created) the group, so this never stands in for the
    /// §3.2 global search — `locate_group` remains the charged path.
    pub(crate) fn cached_group(&self, via: NodeId, seg: SegmentId) -> Option<GroupId> {
        if let Some(gid) = self.servers[via.index()].group_cache.get(&seg) {
            if self.groups.exists(gid) {
                return Some(gid);
            }
            self.servers[via.index()].group_cache.remove(&seg);
        }
        let gid = self.groups.lookup(&group_name(seg));
        if let Some(g) = gid {
            self.servers[via.index()].group_cache.insert(seg, g);
        }
        gid
    }

    /// Ensures `node` is a member of `gid`, charging the view-change round
    /// if it has to join. Returns the time spent.
    pub(crate) fn ensure_member(&self, gid: GroupId, node: NodeId) -> SimDuration {
        if self.groups.is_member(gid, node) {
            return SimDuration::ZERO;
        }
        // Atomic membership change: one GBCAST round to the current view.
        let Some(members) = self.groups.members_vec(gid) else {
            return SimDuration::ZERO;
        };
        let outcome = broadcast_round(&self.net, node, members, 48, 16, "view-change");
        let _ = self.groups.join(gid, node);
        self.stats.incr("groups/joins");
        outcome.full_latency()
    }

    /// Resolves which replica key (segment, major) an operation on `seg`
    /// addresses: an explicit major, or the most recent version visible
    /// from `via` (§3.5: "By using an unqualified filename, the user
    /// automatically requests the most recent available version").
    pub(crate) fn resolve_key(
        &self,
        via: NodeId,
        seg: SegmentId,
        major: Option<u64>,
    ) -> DeceitResult<(ReplicaKey, SimDuration)> {
        let mut latency = SimDuration::ZERO;
        if let Some(m) = major {
            let key = (seg, m);
            if self.servers[via.index()].replicas.contains(&key)
                || !self.reachable_replica_holders(via, key).is_empty()
            {
                return Ok(((seg, m), latency));
            }
            return Err(DeceitError::NoSuchVersion(seg, m));
        }
        // Prefer local knowledge; otherwise search the group.
        let local = self.servers[via.index()].latest_major(seg);
        let (gid, search_latency) = self.locate_group(via, seg);
        latency += search_latency;
        let mut best = local;
        if let Some(members) = gid.and_then(|g| self.groups.members_vec(g)) {
            for m in members {
                if !self.net.reachable(via, m) {
                    continue;
                }
                if let Some(remote) = self.servers[m.index()].latest_major(seg) {
                    best = Some(best.map_or(remote, |b| b.max(remote)));
                }
            }
        }
        match best {
            Some(m) => Ok(((seg, m), latency)),
            None => Err(DeceitError::NoSuchSegment(seg)),
        }
    }
}
