//! Update distribution.
//!
//! §3.2: "An update to f originates from a client and is given to its
//! server. That server then broadcasts the update to all members of f's
//! file group; no other servers receive this update for f." §3.3: "An
//! update requires only one communication round if the token is held. …
//! The token holder synchronously collects only the first s correct
//! replies, where s is the write safety level of the file."
//!
//! The whole path is `&self`: every piece of state it rewrites — the
//! file's replicas, token, stream state, delivery buffers, its slot's
//! event queue — lives behind the ShardKey-indexed seam of
//! [`crate::hot`], so a concurrent host runs it under the shared cell
//! lock plus the file's shard ring lock ([`Cluster::write_sharded`]).

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::ops::{UpdateRecord, WriteOp};
use crate::server::SegmentId;
use crate::trace_events::ProtocolEvent;
use crate::version::VersionPair;

impl Cluster {
    /// Writes to a segment via server `via`.
    ///
    /// `expected` implements the conditional write of §5.1: "a write call
    /// can also have a version pair as a parameter; in this case the write
    /// will succeed only if the version pair of the segment matches the
    /// version pair in the call … otherwise an error will be returned."
    ///
    /// Returns the version pair of the segment after the write.
    pub fn write(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<OpResult<VersionPair>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_write(via, seg, op, expected))
    }

    /// The sharded-path twin of [`Cluster::write`]: the caller holds the
    /// ring locks for `slots`, which must cover `seg`'s slot.
    pub fn write_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<OpResult<VersionPair>> {
        debug_assert!(slots.contains(&self.slot_of(seg)), "ring locks must cover the written file");
        self.client_op_scoped(via, OpScope::Slots(slots), |c| c.do_write(via, seg, op, expected))
    }

    fn do_write(
        &self,
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<(VersionPair, SimDuration)> {
        // §3.3 optimization 2: for a small one-shot update, pass the
        // update to the current token holder instead of moving the token.
        if self.cfg.opt_forward_small && op.wire_size() <= self.cfg.forward_small_threshold {
            if let Ok((key, _)) = self.resolve_key(via, seg, None) {
                if !self.server(via).holds_token(key) {
                    if let Some(holder) = self.find_reachable_token_holder(via, key) {
                        if holder != via {
                            let rtt = self.round_trip(via, holder, op.wire_size(), 24)?;
                            self.stats.incr("core/token/updates_forwarded");
                            let (v, inner) = self.do_write(holder, seg, op, expected)?;
                            return Ok((v, rtt + inner));
                        }
                    }
                }
            }
        }

        // Table 1 row 1: precondition "token is not held" → acquire token.
        let piggyback = self.cfg.opt_piggyback_acquire;
        let (key, mut latency) = self.ensure_token_for_write(via, seg, piggyback)?;

        // Conditional write check against the authoritative (token)
        // version pair — a clone-free probe; the full token is read only
        // *after* extra-replica deletion below, so the write-back at the
        // end of this function can never resurrect a just-deleted victim
        // into the stored holder set.
        // "Just ensured" is best-effort under concurrency: a crash on
        // the ensure/write seam can drop the token, in which case the
        // write is refused rather than the server killed.
        let token_version = self
            .server(via)
            .tokens
            .with_ref(&key, |t| t.map(|t| t.version))
            .ok_or(DeceitError::WriteUnavailable(seg))?;
        if let Some(exp) = expected {
            if token_version != exp {
                self.stats.incr("core/occ/conflicts");
                return Err(DeceitError::VersionConflict {
                    segment: seg,
                    expected: exp,
                    actual: token_version,
                });
            }
        }

        let params = self.params_of(via, key);

        // Table 1 row 2: "replicas are not marked as unstable" → mark
        // replicas as unstable (§3.4), once per write stream.
        if params.stability {
            let unstable_done =
                self.server(via).streams.get(&key).map(|s| s.group_unstable).unwrap_or(false);
            if !unstable_done {
                latency += self.mark_unstable_round(via, key);
            }
        }

        // §3.1: "The token holder t will delete these extra replicas when
        // an update occurs instead of updating them." The token's holder
        // set is the §3.1 upper bound on the replica count; when it does
        // not exceed the minimum level there is nothing extra to find,
        // and the reachability scan is skipped.
        let holder_bound =
            self.server(via).tokens.with_ref(&key, |t| t.map(|t| t.holders.len())).unwrap_or(0);
        if holder_bound > params.min_replicas {
            self.delete_extra_replicas(via, key);
        }

        // The authoritative token, read after any holder-set update the
        // deletion above stored. Same seam as above: refuse, don't panic.
        let token = self.server(via).tokens.get(&key).ok_or(DeceitError::WriteUnavailable(seg))?;

        // Table 1 row 3: the distributed update itself.
        let new_version = token.version.bump();
        let wire_size = op.wire_size();
        let disk_cost = self.cfg.disk.write_cost(op.disk_size());
        let update = UpdateRecord { new_version, op };
        let now = self.now();
        let needed_remote = params.write_safety.saturating_sub(1);
        let (remote_replica_rtts, replies_from_replicas, group_size) =
            if self.cfg.opt_write_pipeline {
                self.distribute_pipelined(
                    via,
                    key,
                    &update,
                    &token,
                    needed_remote,
                    wire_size,
                    disk_cost,
                )
            } else {
                let members: Vec<NodeId> =
                    self.group_members(seg).map(|(_, m)| m).unwrap_or_else(|| vec![via]);
                let remote: Vec<NodeId> = members.iter().copied().filter(|&m| m != via).collect();
                let group_size = remote.len();
                let (rtts, replies) = self.distribute_eager(
                    via,
                    key,
                    &update,
                    &remote,
                    needed_remote,
                    wire_size,
                    disk_cost,
                    now,
                );
                (rtts, replies, group_size)
            };
        self.emit_from(
            via,
            ProtocolEvent::UpdateDistributed { seg, sub: new_version.sub, group_size },
        );
        self.stats.incr("core/updates");

        // Apply locally at the token holder (the primary replica).
        let sync_local = params.write_safety >= 1;
        self.apply_update_at(via, key, &update, sync_local);
        if !sync_local {
            self.schedule_flush(via, key.0);
        }

        // Publish (or advance) the holder-local read lease: the replica
        // now embeds everything through `new_version`, which is exactly
        // the acked durable prefix once this write returns. Granted
        // *after* the apply, so a lock-free reader in the window between
        // them sees a version/lease mismatch and falls back — never a
        // prefix ahead of the lease. Only streams under §3.4 stability
        // need it: without stability the holder's replica stays stable
        // and the ordinary fast path serves it.
        if self.cfg.opt_read_leases && params.stability {
            let prior = self
                .server(via)
                .leases
                .insert(key, crate::server::ReadLease { version: new_version });
            // Flight-record the opening of the lock-free window, not
            // every per-write refresh — a stream would otherwise flood
            // the ring with one grant per update.
            if prior.is_none() {
                self.emit_from(via, ProtocolEvent::LeaseGranted { seg, on: via });
            }
        }

        // Advance the token's version pair — folding in the availability
        // check so the token hits storage once. §3.5: "Some of a server's
        // non-volatile storage is updated immediately when values change,
        // and some of it is written asynchronously, depending on safety"
        // — at safety ≥ 1 the token must hit disk with the data, or a
        // crash would leave recovery believing stale replicas current.
        // Availability "medium": disable the token if the majority was
        // lost mid-stream (§4: "write availability may be lost in the
        // middle of a stream of updates").
        let mut t = token;
        t.version = new_version;
        if params.availability == crate::params::WriteAvailability::Medium
            && replies_from_replicas < t.majority(params.min_replicas)
            && t.enabled
        {
            t.enabled = false;
            self.stats.incr("core/token/disabled");
        }
        if sync_local {
            self.server(via).tokens.put_sync(key, t);
        } else {
            self.server(via).tokens.put_async(key, t);
            self.schedule_flush(via, key.0);
        }

        // Table 1 row 4: count update replies; §3.1 method 1 — if the
        // number of correct replies drops below the minimum replica level,
        // create new replicas.
        self.emit_from(
            via,
            ProtocolEvent::RepliesCounted {
                seg,
                replies: replies_from_replicas,
                needed: params.min_replicas,
            },
        );
        if replies_from_replicas < params.min_replicas {
            // Table 1 row 5: insufficient replicas → generate new replicas.
            self.schedule_min_replica_fill(via, key);
        }

        // Client-visible latency: the s-th correct reply (§3.3). The
        // holder's own durable apply is the first "reply"; each remote
        // reply costs its round trip.
        let net_wait = match params.write_safety {
            0 => SimDuration::ZERO,
            1 => disk_cost,
            s => {
                let needed_remote = s - 1;
                let idx = needed_remote.min(remote_replica_rtts.len());
                let remote_wait =
                    if idx == 0 { SimDuration::ZERO } else { remote_replica_rtts[idx - 1] };
                disk_cost.max(remote_wait)
            }
        };
        latency += net_wait;

        // Table 1 row 6 setup: schedule the period-of-no-write-activity
        // check that will mark replicas stable again (§3.4). One check
        // stays pending per stream; a stale firing re-arms itself to the
        // newest quiet horizon, so a stream of N writes queues O(1)
        // checks, not N.
        if params.stability {
            let (epoch, arm) =
                self.server(via).streams.with_or_insert(key, Default::default, |stream| {
                    stream.last_write = now;
                    stream.epoch += 1;
                    (stream.epoch, !std::mem::replace(&mut stream.check_scheduled, true))
                });
            if arm {
                self.events.push(
                    now + self.cfg.stability_timeout,
                    Pending::StabilizeCheck { server: via, key, epoch },
                );
            }
        }

        self.stats.record_duration("core/write_latency", latency);
        Ok((new_version, latency))
    }

    /// The paper prototype's eager distribution: one broadcast round to
    /// the whole file group per update, with write-through application at
    /// the safety-path replicas and a deferred `ApplyUpdate` per
    /// write-behind replica. Returns the safety-relevant remote reply
    /// times and the §3.1 reply count (self + remote repliers holding
    /// replicas).
    #[allow(clippy::too_many_arguments)]
    fn distribute_eager(
        &self,
        via: NodeId,
        key: (SegmentId, u64),
        update: &UpdateRecord,
        remote: &[NodeId],
        needed_remote: usize,
        wire_size: usize,
        remote_disk: SimDuration,
        now: deceit_sim::SimTime,
    ) -> (Vec<SimDuration>, usize) {
        let outcome = broadcast_round(&self.net, via, remote.to_vec(), wire_size, 16, "update");
        self.server(via).observe_round(&outcome);

        // Schedule write-behind application at every replica holder that
        // acknowledged receipt. Their acks are receipt, not application
        // (§1: an update can be visible before it reaches all replicas) —
        // application lands after the lazy-apply delay.
        let mut remote_replica_rtts: Vec<SimDuration> = Vec::new();
        for (m, rtt) in &outcome.replies {
            if !self.server(*m).replicas.contains(&key) {
                continue;
            }
            if remote_replica_rtts.len() < needed_remote {
                // Safety-path replica: its reply means "applied durably",
                // so it writes through before answering (reply time
                // includes its disk write), after catching up on any
                // still-lazy earlier updates to keep the order identical.
                // A replica that cannot be brought current (even by
                // state transfer) is not a correct reply and the next
                // replier takes its safety slot — §3.3 collects the
                // first s *correct* replies.
                self.drain_pending_applies(*m, key);
                if self.deliver_safety_copy(via, *m, key, update) {
                    remote_replica_rtts.push(*rtt + remote_disk);
                }
            } else {
                // Write-behind replica: acked receipt, applies after the
                // lazy delay (§1's asynchronous update propagation).
                remote_replica_rtts.push(*rtt + remote_disk);
                let apply_at = now + *rtt / 2 + self.cfg.lazy_apply_delay;
                self.events.push(
                    apply_at,
                    Pending::ApplyUpdate { server: *m, key, update: update.clone() },
                );
            }
        }
        let replies = 1 + remote_replica_rtts.len(); // self + remote
        (remote_replica_rtts, replies)
    }

    /// The asynchronous write pipeline's distribution
    /// (`ClusterConfig::opt_write_pipeline`): write-through at exactly
    /// the `write_safety - 1` remote replicas the safety level requires,
    /// then append the update to the file's outbound stream. One queued
    /// [`Pending::PropagateStream`] per stream ships everything buffered
    /// since the last drain in a single group broadcast — consecutive
    /// updates to the same replica ride one message.
    ///
    /// Returns the safety-lane reply times, the §3.1 reply count, and
    /// the remote group size. Unlike the eager path, no round runs on
    /// the common (safety ≤ 1) path, so the reply count substitutes
    /// reachability over the token's holder set — the §3.1 upper bound
    /// the holder maintains; those are exactly the servers the eager
    /// broadcast would have heard from.
    #[allow(clippy::too_many_arguments)]
    fn distribute_pipelined(
        &self,
        via: NodeId,
        key: (SegmentId, u64),
        update: &UpdateRecord,
        token: &crate::token::WriteToken,
        needed_remote: usize,
        wire_size: usize,
        remote_disk: SimDuration,
    ) -> (Vec<SimDuration>, usize, usize) {
        // Group size through the location cache — no name formatting,
        // no member-list allocation on the common path.
        let gid = self.cached_group(via, key.0);
        let group_size = gid.map(|g| self.groups.member_count(g).saturating_sub(1)).unwrap_or(0);

        // Safety lane (§3.3: "the token holder synchronously collects
        // only the first s correct replies"): each chosen replica first
        // catches up on any still-buffered earlier updates, so the
        // identical-order guarantee holds on the safety path.
        let mut remote_replica_rtts: Vec<SimDuration> = Vec::new();
        if needed_remote > 0 {
            let targets: Vec<NodeId> = gid
                .and_then(|g| self.groups.members_vec(g))
                .unwrap_or_default()
                .into_iter()
                .filter(|&m| {
                    m != via && self.net.reachable(via, m) && self.server(m).replicas.contains(&key)
                })
                .take(needed_remote)
                .collect();
            let outcome = broadcast_round(&self.net, via, targets, wire_size, 16, "update");
            self.server(via).observe_round(&outcome);
            for (m, rtt) in &outcome.replies {
                if self.deliver_safety_copy(via, *m, key, update) {
                    remote_replica_rtts.push(*rtt + remote_disk);
                }
            }
        }

        // Batch lane: buffer for the rest of the group. Members already
        // served by the safety lane drop the redelivery in their ordered
        // receivers, so the stream stays one linear history.
        if group_size > 0 {
            let schedule =
                self.server(via).outbound.with_or_insert(key, Default::default, |stream| {
                    stream.updates.push(update.clone());
                    !std::mem::replace(&mut stream.scheduled, true)
                });
            if schedule {
                let at = self.now() + self.cfg.lazy_apply_delay;
                self.events.push(at, Pending::PropagateStream { holder: via, key });
            }
        }

        let replies =
            1 + token.holders.iter().filter(|&&h| h != via && self.net.reachable(via, h)).count();
        (remote_replica_rtts, replies, group_size)
    }

    /// Write-through delivery for the safety lane: catches `target` up
    /// from the holder's outbound backlog, applies `update`, and — if a
    /// sequence gap left the replica behind (it missed a drain whose
    /// updates no longer exist as messages) — regenerates it from the
    /// holder's replica by state transfer (§3.1) and re-delivers.
    ///
    /// Returns whether the replica is durably current through `update`;
    /// only then may it be counted as one of §3.3's "first s correct
    /// replies" — acking a write at safety `s` on a reply whose copy is
    /// actually stale would silently void the durability contract.
    fn deliver_safety_copy(
        &self,
        holder: NodeId,
        target: NodeId,
        key: (SegmentId, u64),
        update: &UpdateRecord,
    ) -> bool {
        let current = |c: &Self| {
            c.server(target)
                .replicas
                .with_ref(&key, |r| r.map(|r| r.version == update.new_version))
                .unwrap_or(false)
        };
        if self.cfg.danger_skip_safety_currency {
            // Auditor mutation knob: count the reply blindly. A target
            // that rejoined with a sequence gap holds `update` in its
            // ordered receiver forever, so the "durable" copy is stale —
            // the exact defect `core::audit` exists to catch.
            self.apply_updates_ordered(target, key, std::slice::from_ref(update), true);
            return true;
        }
        self.catch_up_from_outbound(holder, target, key);
        self.apply_updates_ordered(target, key, std::slice::from_ref(update), true);
        if current(self) {
            return true;
        }
        // Sequence gap: the missing prefix of the stream no longer
        // exists as messages, so regenerate from the primary. The
        // holder's replica embeds everything *before* this update (it
        // applies `update` after distribution), so a fresh receiver on
        // the transferred state delivers `update` cleanly on top.
        let Some(src) = self.server(holder).replicas.get(&key) else {
            return false;
        };
        let blast = self.cfg.blast;
        if deceit_isis::xfer::transfer_state(
            &self.net,
            &blast,
            holder,
            target,
            src.data.len() as u64,
            "replica-xfer",
        )
        .duration()
        .is_none()
        {
            return false;
        }
        let now = self.now();
        self.server(target).replicas.put_sync(key, crate::replica::Replica::cloned_from(&src, now));
        self.server(target).drop_receiver(&key);
        self.apply_updates_ordered(target, key, std::slice::from_ref(update), true);
        self.stats.incr("core/pipeline/safety_transfers");
        current(self)
    }

    /// Delivers the still-buffered outbound updates `target` has not yet
    /// embedded, write-through — the safety lane's backlog catch-up.
    fn catch_up_from_outbound(&self, holder: NodeId, target: NodeId, key: (SegmentId, u64)) {
        let target_sub = self.server(target).replicas.with_ref(&key, |r| r.map(|r| r.version.sub));
        let Some(target_sub) = target_sub else { return };
        let backlog: Vec<UpdateRecord> = self.server(holder).outbound.with(&key, |s| match s {
            Some(s) => {
                s.updates.iter().filter(|u| u.new_version.sub > target_sub).cloned().collect()
            }
            None => Vec::new(),
        });
        if !backlog.is_empty() {
            self.apply_updates_ordered(target, key, &backlog, true);
        }
    }

    /// The deferred drain of the write pipeline: ships every update
    /// buffered for `key` at `holder` in one group broadcast and applies
    /// the batch (write-behind) at each reachable replica holder, folding
    /// all of a replica's deliverable updates into a single
    /// read-modify-write. Members that cannot be reached miss the batch —
    /// exactly like a missed eager broadcast — and are caught up later by
    /// the §3.4 stabilize round or §3.1 regeneration.
    pub(crate) fn propagate_stream(&self, holder: NodeId, key: (SegmentId, u64)) {
        if !self.net.is_up(holder) {
            return;
        }
        let batch: Vec<UpdateRecord> = self.server(holder).outbound.with(&key, |s| match s {
            Some(s) => {
                s.scheduled = false;
                std::mem::take(&mut s.updates)
            }
            None => Vec::new(),
        });
        if batch.is_empty() {
            return;
        }
        let members: Vec<NodeId> = self
            .cached_group(holder, key.0)
            .and_then(|g| self.groups.members_vec(g))
            .unwrap_or_default();
        let remote: Vec<NodeId> = members.into_iter().filter(|&m| m != holder).collect();
        if remote.is_empty() {
            return;
        }
        let wire: usize = batch.iter().map(|u| u.op.wire_size()).sum();
        let outcome = broadcast_round(&self.net, holder, remote, wire, 16, "update");
        self.server(holder).observe_round(&outcome);
        for (m, _) in &outcome.replies {
            if !self.server(*m).replicas.contains(&key) {
                continue;
            }
            if self.apply_updates_ordered(*m, key, &batch, false) > 0 {
                self.schedule_flush(*m, key.0);
            }
        }
        self.stats.incr("core/pipeline/batches");
        self.stats.add("core/pipeline/batched_updates", batch.len() as u64);
        // The drain-batch distribution is the batching window's
        // effectiveness signal: always-on, unlike the stats above.
        self.obs.drain_batch.record(batch.len() as u64);
        self.emit_from(
            holder,
            ProtocolEvent::StreamDrained {
                seg: key.0,
                updates: batch.len(),
                group_size: outcome.replies.len(),
            },
        );
    }

    /// Routes a batch of sequenced updates through one replica's ordered
    /// delivery buffer and folds everything deliverable into the stored
    /// replica under a single read-modify-write — one clone, one put —
    /// regardless of batch size. Returns how many updates landed. Stale
    /// redeliveries (already embedded in the replica) are dropped by the
    /// receiver, so feeding the same update twice is harmless.
    pub(crate) fn apply_updates_ordered(
        &self,
        server: NodeId,
        key: (SegmentId, u64),
        updates: &[UpdateRecord],
        sync: bool,
    ) -> usize {
        let srv = self.server(server);
        if !srv.replicas.contains(&key) {
            return 0;
        }
        let mut deliverable: Vec<UpdateRecord> = Vec::new();
        for u in updates {
            let msg = deceit_isis::SequencedMsg { seq: u.new_version.sub, payload: u.clone() };
            deliverable.extend(srv.receive_ordered(key, msg).into_iter().map(|(_, d)| d));
        }
        if deliverable.is_empty() {
            return 0;
        }
        let Some(mut replica) = srv.replicas.get(&key) else {
            return 0;
        };
        for u in &deliverable {
            u.op.apply(&mut replica.data, &mut replica.params);
            replica.version = u.new_version;
        }
        replica.last_access = self.now();
        if sync {
            srv.replicas.put_sync(key, replica);
        } else {
            srv.replicas.put_async(key, replica);
        }
        deliverable.len()
    }

    /// Applies an update to a local replica, either write-through
    /// (durable, charged to the caller) or write-behind.
    pub(crate) fn apply_update_at(
        &self,
        server: NodeId,
        key: (SegmentId, u64),
        update: &UpdateRecord,
        sync: bool,
    ) {
        let Some(mut replica) = self.server(server).replicas.get(&key) else {
            return;
        };
        update.op.apply(&mut replica.data, &mut replica.params);
        replica.version = update.new_version;
        replica.last_access = self.now();
        if sync {
            self.server(server).replicas.put_sync(key, replica);
        } else {
            self.server(server).replicas.put_async(key, replica);
        }
    }

    /// Applies, synchronously and in order, every still-pending lazy
    /// update for one replica (used before a write-through apply so the
    /// identical-order guarantee of §3.3 holds on the safety path).
    pub(crate) fn drain_pending_applies(&self, server: NodeId, key: (SegmentId, u64)) {
        let slot = self.slot_of(key.0);
        let mut drained: Vec<UpdateRecord> = Vec::new();
        for ev in self.events.drain_matching(slot, |e| {
            matches!(e, Pending::ApplyUpdate { server: s, key: k, .. } if *s == server && *k == key)
        }) {
            if let Pending::ApplyUpdate { update, .. } = ev {
                drained.push(update);
            }
        }
        drained.sort_by_key(|u| u.new_version.sub);
        for upd in drained {
            let msg = deceit_isis::SequencedMsg { seq: upd.new_version.sub, payload: upd };
            let deliverable = self.server(server).receive_ordered(key, msg);
            for (_, u) in deliverable {
                self.apply_update_at(server, key, &u, true);
            }
        }
    }

    /// Schedules a disk write-back for a server's asynchronous writes.
    /// `seg` attributes the flush to the shard whose mutation caused it,
    /// so the deferred work drains under that file's locks.
    pub(crate) fn schedule_flush(&self, server: NodeId, seg: SegmentId) {
        let at = self.now() + self.cfg.flush_delay;
        self.events.push(at, Pending::FlushServer { server, seg });
    }
}
