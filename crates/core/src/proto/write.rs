//! Update distribution.
//!
//! §3.2: "An update to f originates from a client and is given to its
//! server. That server then broadcasts the update to all members of f's
//! file group; no other servers receive this update for f." §3.3: "An
//! update requires only one communication round if the token is held. …
//! The token holder synchronously collects only the first s correct
//! replies, where s is the write safety level of the file."
//!
//! The whole path is `&self`: every piece of state it rewrites — the
//! file's replicas, token, stream state, delivery buffers, its slot's
//! event queue — lives behind the ShardKey-indexed seam of
//! [`crate::hot`], so a concurrent host runs it under the shared cell
//! lock plus the file's shard ring lock ([`Cluster::write_sharded`]).

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::ops::{UpdateRecord, WriteOp};
use crate::server::SegmentId;
use crate::trace_events::ProtocolEvent;
use crate::version::VersionPair;

impl Cluster {
    /// Writes to a segment via server `via`.
    ///
    /// `expected` implements the conditional write of §5.1: "a write call
    /// can also have a version pair as a parameter; in this case the write
    /// will succeed only if the version pair of the segment matches the
    /// version pair in the call … otherwise an error will be returned."
    ///
    /// Returns the version pair of the segment after the write.
    pub fn write(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<OpResult<VersionPair>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_write(via, seg, op, expected))
    }

    /// The sharded-path twin of [`Cluster::write`]: the caller holds the
    /// ring locks for `slots`, which must cover `seg`'s slot.
    pub fn write_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<OpResult<VersionPair>> {
        debug_assert!(slots.contains(&self.slot_of(seg)), "ring locks must cover the written file");
        self.client_op_scoped(via, OpScope::Slots(slots), |c| c.do_write(via, seg, op, expected))
    }

    fn do_write(
        &self,
        via: NodeId,
        seg: SegmentId,
        op: WriteOp,
        expected: Option<VersionPair>,
    ) -> DeceitResult<(VersionPair, SimDuration)> {
        // §3.3 optimization 2: for a small one-shot update, pass the
        // update to the current token holder instead of moving the token.
        if self.cfg.opt_forward_small && op.wire_size() <= self.cfg.forward_small_threshold {
            if let Ok((key, _)) = self.resolve_key(via, seg, None) {
                if !self.server(via).holds_token(key) {
                    if let Some(holder) = self.find_reachable_token_holder(via, key) {
                        if holder != via {
                            let rtt = self.round_trip(via, holder, op.wire_size(), 24)?;
                            self.stats.incr("core/token/updates_forwarded");
                            let (v, inner) = self.do_write(holder, seg, op, expected)?;
                            return Ok((v, rtt + inner));
                        }
                    }
                }
            }
        }

        // Table 1 row 1: precondition "token is not held" → acquire token.
        let piggyback = self.cfg.opt_piggyback_acquire;
        let (key, mut latency) = self.ensure_token_for_write(via, seg, piggyback)?;
        let token = self.server(via).tokens.get(&key).expect("token just ensured");

        // Conditional write check against the authoritative (token)
        // version pair.
        if let Some(exp) = expected {
            if token.version != exp {
                self.stats.incr("core/occ/conflicts");
                return Err(DeceitError::VersionConflict {
                    segment: seg,
                    expected: exp,
                    actual: token.version,
                });
            }
        }

        let params = self.params_of(via, key);

        // Table 1 row 2: "replicas are not marked as unstable" → mark
        // replicas as unstable (§3.4), once per write stream.
        if params.stability {
            let unstable_done =
                self.server(via).streams.get(&key).map(|s| s.group_unstable).unwrap_or(false);
            if !unstable_done {
                latency += self.mark_unstable_round(via, key);
            }
        }

        // §3.1: "The token holder t will delete these extra replicas when
        // an update occurs instead of updating them."
        self.delete_extra_replicas(via, key);

        // Table 1 row 3: the distributed update itself — one broadcast
        // round to the file group.
        let new_version = token.version.bump();
        let update = UpdateRecord { new_version, op: op.clone() };
        let members: Vec<NodeId> =
            self.group_members(seg).map(|(_, m)| m).unwrap_or_else(|| vec![via]);
        let remote: Vec<NodeId> = members.iter().copied().filter(|&m| m != via).collect();
        let group_size = remote.len();
        let outcome = broadcast_round(&self.net, via, remote.clone(), op.wire_size(), 16, "update");
        self.server(via).observe_round(&outcome);
        self.emit(ProtocolEvent::UpdateDistributed { seg, sub: new_version.sub, group_size });
        self.stats.incr("core/updates");

        // Schedule write-behind application at every replica holder that
        // acknowledged receipt. Their acks are receipt, not application
        // (§1: an update can be visible before it reaches all replicas) —
        // application lands after the lazy-apply delay.
        let now = self.now();
        let remote_disk = self.cfg.disk.write_cost(op.disk_size());
        let needed_remote = params.write_safety.saturating_sub(1);
        let mut remote_replica_rtts: Vec<SimDuration> = Vec::new();
        for (m, rtt) in &outcome.replies {
            if !self.server(*m).replicas.contains(&key) {
                continue;
            }
            if remote_replica_rtts.len() < needed_remote {
                // Safety-path replica: its reply means "applied durably",
                // so it writes through before answering (reply time
                // includes its disk write), after catching up on any
                // still-lazy earlier updates to keep the order identical.
                self.drain_pending_applies(*m, key);
                let msg = deceit_isis::SequencedMsg {
                    seq: update.new_version.sub,
                    payload: update.clone(),
                };
                let deliverable = self.server(*m).receive_ordered(key, msg);
                for (_, upd) in deliverable {
                    self.apply_update_at(*m, key, &upd, true);
                }
                remote_replica_rtts.push(*rtt + remote_disk);
            } else {
                // Write-behind replica: acked receipt, applies after the
                // lazy delay (§1's asynchronous update propagation).
                remote_replica_rtts.push(*rtt + remote_disk);
                let apply_at = now + *rtt / 2 + self.cfg.lazy_apply_delay;
                self.events.push(
                    apply_at,
                    Pending::ApplyUpdate { server: *m, key, update: update.clone() },
                );
            }
        }

        // Apply locally at the token holder (the primary replica).
        let disk_cost = self.cfg.disk.write_cost(op.disk_size());
        let sync_local = params.write_safety >= 1;
        self.apply_update_at(via, key, &update, sync_local);
        if !sync_local {
            self.schedule_flush(via, key.0);
        }

        // Advance the token's version pair. §3.5: "Some of a server's
        // non-volatile storage is updated immediately when values change,
        // and some of it is written asynchronously, depending on safety"
        // — at safety ≥ 1 the token must hit disk with the data, or a
        // crash would leave recovery believing stale replicas current.
        let mut t = token;
        t.version = new_version;
        if sync_local {
            self.server(via).tokens.put_sync(key, t.clone());
        } else {
            self.server(via).tokens.put_async(key, t.clone());
            self.schedule_flush(via, key.0);
        }

        // Table 1 row 4: count update replies; §3.1 method 1 — if the
        // number of correct replies drops below the minimum replica level,
        // create new replicas.
        let replies_from_replicas = 1 + remote_replica_rtts.len(); // self + remote
        self.emit(ProtocolEvent::RepliesCounted {
            seg,
            replies: replies_from_replicas,
            needed: params.min_replicas,
        });
        if replies_from_replicas < params.min_replicas {
            // Table 1 row 5: insufficient replicas → generate new replicas.
            self.schedule_min_replica_fill(via, key);
        }

        // Availability "medium": disable the token if the majority was
        // lost mid-stream (§4: "write availability may be lost in the
        // middle of a stream of updates").
        if params.availability == crate::params::WriteAvailability::Medium {
            let majority = t.majority(params.min_replicas);
            if replies_from_replicas < majority && t.enabled {
                t.enabled = false;
                self.server(via).tokens.put_async(key, t);
                self.schedule_flush(via, key.0);
                self.stats.incr("core/token/disabled");
            }
        }

        // Client-visible latency: the s-th correct reply (§3.3). The
        // holder's own durable apply is the first "reply"; each remote
        // reply costs its round trip.
        let net_wait = match params.write_safety {
            0 => SimDuration::ZERO,
            1 => disk_cost,
            s => {
                let needed_remote = s - 1;
                let idx = needed_remote.min(remote_replica_rtts.len());
                let remote_wait =
                    if idx == 0 { SimDuration::ZERO } else { remote_replica_rtts[idx - 1] };
                disk_cost.max(remote_wait)
            }
        };
        latency += net_wait;

        // Table 1 row 6 setup: schedule the period-of-no-write-activity
        // check that will mark replicas stable again (§3.4).
        if params.stability {
            let epoch = self.server(via).streams.with_or_insert(key, Default::default, |stream| {
                stream.last_write = now;
                stream.epoch += 1;
                stream.epoch
            });
            self.events.push(
                now + self.cfg.stability_timeout,
                Pending::StabilizeCheck { server: via, key, epoch },
            );
        }

        self.stats.record_duration("core/write_latency", latency);
        Ok((new_version, latency))
    }

    /// Applies an update to a local replica, either write-through
    /// (durable, charged to the caller) or write-behind.
    pub(crate) fn apply_update_at(
        &self,
        server: NodeId,
        key: (SegmentId, u64),
        update: &UpdateRecord,
        sync: bool,
    ) {
        let Some(mut replica) = self.server(server).replicas.get(&key) else {
            return;
        };
        update.op.apply(&mut replica.data, &mut replica.params);
        replica.version = update.new_version;
        replica.last_access = self.now();
        if sync {
            self.server(server).replicas.put_sync(key, replica);
        } else {
            self.server(server).replicas.put_async(key, replica);
        }
    }

    /// Applies, synchronously and in order, every still-pending lazy
    /// update for one replica (used before a write-through apply so the
    /// identical-order guarantee of §3.3 holds on the safety path).
    pub(crate) fn drain_pending_applies(&self, server: NodeId, key: (SegmentId, u64)) {
        let slot = self.slot_of(key.0);
        let mut drained: Vec<UpdateRecord> = Vec::new();
        for ev in self.events.drain_matching(slot, |e| {
            matches!(e, Pending::ApplyUpdate { server: s, key: k, .. } if *s == server && *k == key)
        }) {
            if let Pending::ApplyUpdate { update, .. } = ev {
                drained.push(update);
            }
        }
        drained.sort_by_key(|u| u.new_version.sub);
        for upd in drained {
            let msg = deceit_isis::SequencedMsg { seq: upd.new_version.sub, payload: upd };
            let deliverable = self.server(server).receive_ordered(key, msg);
            for (_, u) in deliverable {
                self.apply_update_at(server, key, &u, true);
            }
        }
    }

    /// Schedules a disk write-back for a server's asynchronous writes.
    /// `seg` attributes the flush to the shard whose mutation caused it,
    /// so the deferred work drains under that file's locks.
    pub(crate) fn schedule_flush(&self, server: NodeId, seg: SegmentId) {
        let at = self.now() + self.cfg.flush_delay;
        self.events.push(at, Pending::FlushServer { server, seg });
    }
}
