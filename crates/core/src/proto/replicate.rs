//! Replica generation and deletion (§3.1).
//!
//! "There are four ways that a replica can be generated:
//! 1. The token holder t may lose contact with a replica … If the number
//!    of replies drops below r, then t will create new replicas.
//! 2. If the minimum replica level is increased, t will create new
//!    replicas.
//! 3. A user may request the token holder t to create or delete a replica
//!    on a specific server with a special command.
//! 4. A server may request that a replica be generated in order to improve
//!    read performance \[migration\].
//!
//! "Eventually, there may exist several unneeded replicas of a file. The
//! token holder t will delete these extra replicas when an update occurs
//! instead of updating them. They are deleted in least-recently-used
//! order."

use deceit_net::NodeId;
use deceit_sim::SimDuration;
use std::sync::atomic::Ordering;

use crate::cluster::Cluster;
use crate::event::Pending;
use crate::replica::Replica;
use crate::server::ReplicaKey;
use crate::trace_events::ProtocolEvent;

impl Cluster {
    /// Schedules background replica generation until `key` meets its
    /// minimum replica level (methods 1 and 2; "as a background activity").
    pub(crate) fn schedule_min_replica_fill(&self, holder: NodeId, key: ReplicaKey) {
        let params = self.params_of(holder, key);
        let current = self.reachable_replica_holders(holder, key);
        if current.len() >= params.min_replicas {
            return;
        }
        let deficit = params.min_replicas - current.len();
        // Candidate servers: reachable, not yet holding a replica, lowest
        // load first (ops served is the only load signal we keep).
        let mut candidates: Vec<NodeId> = self
            .server_ids()
            .into_iter()
            .filter(|&s| {
                s != holder
                    && self.net.reachable(holder, s)
                    && !self.server(s).replicas.contains(&key)
            })
            .collect();
        candidates.sort_by_key(|&s| (self.server(s).ops_served.load(Ordering::Relaxed), s));
        let at = self.now() + SimDuration::from_millis(1);
        for target in candidates.into_iter().take(deficit) {
            self.events.push(at, Pending::GenerateReplica { holder, key, target });
        }
    }

    /// Synchronously fills the minimum replica level (used when the token
    /// holder itself notices the deficit with no failure in sight — e.g.
    /// right after the user raises the level, §3.1 method 2). Returns the
    /// number of replicas generated.
    pub(crate) fn fill_min_replicas_now(&self, holder: NodeId, key: ReplicaKey) -> usize {
        let params = self.params_of(holder, key);
        let mut generated = 0;
        loop {
            let current = self.reachable_replica_holders(holder, key);
            if current.len() >= params.min_replicas {
                return generated;
            }
            let candidate = self
                .server_ids()
                .into_iter()
                .filter(|&s| {
                    s != holder
                        && self.net.reachable(holder, s)
                        && !self.server(s).replicas.contains(&key)
                })
                .min_by_key(|&s| (self.server(s).ops_served.load(Ordering::Relaxed), s));
            let Some(target) = candidate else {
                return generated; // not enough servers available
            };
            self.generate_replica_now(holder, key, target);
            if !self.server(target).replicas.contains(&key) {
                return generated; // generation failed; stop trying
            }
            generated += 1;
        }
    }

    /// The deferred replica-generation handler: blast-transfers the file
    /// from `holder` to `target` (§3.1: "Replicas are generated with a
    /// file transfer protocol from an existing replica").
    ///
    /// "The token holder delays updates during replica generation to
    /// prevent inconsistency" — generation executes under the file's
    /// shard locks (the pump holds them when firing this handler), which
    /// realizes the same exclusion against that file's updates.
    pub(crate) fn generate_replica_now(&self, holder: NodeId, key: ReplicaKey, target: NodeId) {
        if !self.net.reachable(holder, target) {
            self.stats.incr("core/replicas/generation_failed");
            return;
        }
        let Some(src) = self.server(holder).replicas.get(&key) else {
            return; // replica vanished (deleted or superseded)
        };
        if self.server(target).replicas.contains(&key) {
            return; // raced with another fill
        }
        let blast = self.cfg.blast;
        let Some(_xfer) = deceit_isis::xfer::transfer_state(
            &self.net,
            &blast,
            holder,
            target,
            src.data.len() as u64,
            "replica-xfer",
        )
        .duration() else {
            self.stats.incr("core/replicas/generation_failed");
            return;
        };
        let now = self.now();
        let replica = Replica::cloned_from(&src, now);
        self.server(target).replicas.put_sync(key, replica);
        self.server(target).drop_receiver(&key);

        // Register the new holder with the token holder's upper bound
        // (§3.1: "All replica generation must be accomplished through the
        // token holder, so that the token holder always has an upper bound
        // on the total number of replicas").
        if let Some(th) = self.find_reachable_token_holder(holder, key) {
            if let Some(mut token) = self.server(th).tokens.get(&key) {
                token.holders.insert(target);
                self.server(th).tokens.put_async(key, token);
                self.schedule_flush(th, key.0);
            }
        }
        if let Some((gid, _)) = self.group_members(key.0) {
            self.ensure_member(gid, target);
            self.server(target).group_cache.insert(key.0, gid);
        }
        self.stats.incr("core/replicas/generated");
        self.emit_from(target, ProtocolEvent::ReplicaGenerated { seg: key.0, on: target });
    }

    /// Deletes extra replicas in least-recently-used order at update time
    /// (§3.1). A replica is "extra" when the count exceeds the minimum
    /// replica level and it has not been accessed within the LRU window.
    pub(crate) fn delete_extra_replicas(&self, holder: NodeId, key: ReplicaKey) {
        let params = self.params_of(holder, key);
        let holders = self.reachable_replica_holders(holder, key);
        let now = self.now();
        let cutoff = self.cfg.lru_keep;
        // Candidates: not the token holder, idle beyond the window.
        let mut idle: Vec<(deceit_sim::SimTime, NodeId)> = holders
            .iter()
            .copied()
            .filter(|&h| h != holder)
            .filter_map(|h| {
                let last = self.server(h).replicas.with_ref(&key, |r| r.map(|r| r.last_access))?;
                let idle_for = now.since(last);
                (idle_for >= cutoff).then_some((last, h))
            })
            .collect();
        if idle.is_empty() {
            return;
        }
        idle.sort(); // oldest access first = LRU order
        let deletable = holders.len().saturating_sub(params.min_replicas);
        if deletable == 0 {
            // Idle candidates exist but retiring any would drop the file
            // below its replication floor — the floor wins, always.
            self.obs.placement.migrations_vetoed_floor.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (_, victim) in idle.into_iter().take(deletable) {
            self.server(victim).replicas.delete_sync(&key);
            self.server(victim).drop_receiver(&key);
            if let Some(mut token) = self.server(holder).tokens.get(&key) {
                token.holders.remove(&victim);
                self.server(holder).tokens.put_async(key, token);
                self.schedule_flush(holder, key.0);
            }
            self.obs.placement.replicas_retired.fetch_add(1, Ordering::Relaxed);
            self.stats.incr("core/replicas/lru_deleted");
            self.emit_from(victim, ProtocolEvent::ReplicaDeleted { seg: key.0, on: victim });
        }
    }
}
