//! The special user commands (§2.1).
//!
//! "Special commands are provided to list all versions of a file, locate
//! all replicas of a file, modify file parameters, reconcile directory
//! versions, and provide other functions."

use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::{Cluster, OpResult, OpScope};
use crate::error::{DeceitError, DeceitResult};
use crate::ops::WriteOp;
use crate::params::FileParams;
use crate::server::SegmentId;
use crate::version::VersionPair;

/// One entry of a version listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Major version number.
    pub major: u64,
    /// Current version pair of that version.
    pub version: VersionPair,
    /// Servers holding replicas of it.
    pub holders: Vec<NodeId>,
    /// Whether a live write token exists for it.
    pub has_token: bool,
}

impl Cluster {
    /// Sets the semantic parameters of a segment (`setparam`, §5.1).
    ///
    /// Parameter changes flow through the ordered update machinery so all
    /// replicas agree; raising the minimum replica level triggers replica
    /// generation (§3.1 method 2).
    pub fn set_params(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        params: FileParams,
    ) -> DeceitResult<OpResult<()>> {
        let before = self.peek_params(via, seg);
        let res = self.write(via, seg, WriteOp::SetParams(params), None)?;
        self.after_set_params(via, seg, params, before);
        Ok(OpResult { value: (), latency: res.latency })
    }

    /// The sharded-path twin of [`Cluster::set_params`]: parameter
    /// changes ride the same per-file update machinery as writes, so the
    /// same ring locks suffice.
    pub fn set_params_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
        params: FileParams,
    ) -> DeceitResult<OpResult<()>> {
        let before = self.peek_params(via, seg);
        let res = self.write_sharded(slots, via, seg, WriteOp::SetParams(params), None)?;
        self.after_set_params(via, seg, params, before);
        Ok(OpResult { value: (), latency: res.latency })
    }

    /// Peek at current params to detect a raised replica level.
    fn peek_params(&self, via: NodeId, seg: SegmentId) -> FileParams {
        self.resolve_key(via, seg, None)
            .ok()
            .and_then(|(key, _)| {
                self.all_replica_holders(key)
                    .first()
                    .and_then(|&h| self.server(h).replicas.with_ref(&key, |r| r.map(|r| r.params)))
            })
            .unwrap_or_default()
    }

    fn after_set_params(
        &self,
        via: NodeId,
        seg: SegmentId,
        params: FileParams,
        before: FileParams,
    ) {
        if params.min_replicas > before.min_replicas {
            if let Ok((key, _)) = self.resolve_key(via, seg, None) {
                if let Some(holder) = self.find_reachable_token_holder(via, key) {
                    self.schedule_min_replica_fill(holder, key);
                }
            }
        }
    }

    /// Reads the current parameters of a segment.
    pub fn get_params(
        &mut self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<OpResult<FileParams>> {
        self.client_op_scoped(via, OpScope::Global, |c| c.do_get_params(via, seg))
    }

    /// The sharded-path twin of [`Cluster::get_params`].
    pub fn get_params_sharded(
        &self,
        slots: &[usize],
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<OpResult<FileParams>> {
        self.client_op_scoped(via, OpScope::Slots(slots), |c| c.do_get_params(via, seg))
    }

    fn do_get_params(
        &self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<(FileParams, SimDuration)> {
        let (key, latency) = self.resolve_key(via, seg, None)?;
        let holders = self.reachable_replica_holders(via, key);
        let h = holders.first().copied().ok_or(DeceitError::Unavailable(seg))?;
        let params =
            self.server(h).replicas.with_ref(&key, |r| r.map(|r| r.params)).unwrap_or_default();
        Ok((params, latency + self.cfg.local_read))
    }

    /// "Users may inquire about the current location of all replicas for a
    /// file with another special command" (§3.1).
    pub fn locate_replicas(
        &mut self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<OpResult<Vec<NodeId>>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            let (key, mut latency) = c.resolve_key(via, seg, None)?;
            let mut scratch = SimDuration::ZERO;
            let _ = c.count_available_replicas(via, key, &mut scratch);
            latency += scratch;
            Ok((c.all_replica_holders(key), latency))
        })
    }

    /// Lists every version of a file (§2.1), with holders and token state.
    pub fn list_versions(
        &mut self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<OpResult<Vec<VersionInfo>>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            let (_, mut latency) = c.resolve_key(via, seg, None)?;
            let mut scratch = SimDuration::ZERO;
            let _ = c.count_available_replicas(via, (seg, 0), &mut scratch);
            latency += scratch;
            let mut majors: Vec<u64> = Vec::new();
            for s in c.server_ids() {
                if !c.net.reachable(via, s) {
                    continue;
                }
                for m in c.server(s).majors_of(seg) {
                    if !majors.contains(&m) {
                        majors.push(m);
                    }
                }
            }
            majors.sort_unstable();
            let infos = majors
                .into_iter()
                .map(|m| {
                    let key = (seg, m);
                    let holders = c.all_replica_holders(key);
                    let version = holders
                        .first()
                        .and_then(|&h| {
                            c.server(h).replicas.with_ref(&key, |r| r.map(|r| r.version))
                        })
                        .unwrap_or(VersionPair { major: m, sub: 0 });
                    let has_token = c.find_reachable_token_holder(via, key).is_some();
                    VersionInfo { major: m, version, holders, has_token }
                })
                .collect();
            Ok((infos, latency))
        })
    }

    /// The version pair of a segment ("available to the user through a
    /// special command so that the user can determine if a file has been
    /// modified", §3.5).
    pub fn version_of(
        &mut self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<OpResult<VersionPair>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            let (key, latency) = c.resolve_key(via, seg, None)?;
            let holders = c.reachable_replica_holders(via, key);
            let h = holders.first().copied().ok_or(DeceitError::Unavailable(seg))?;
            // The holder list is advisory — the replica can vanish
            // between the probe and this read; report unavailable.
            let v = c
                .server(h)
                .replicas
                .with_ref(&key, |r| r.map(|r| r.version))
                .ok_or(DeceitError::Unavailable(seg))?;
            Ok((v, latency + c.cfg.local_read))
        })
    }

    /// "A user may request the token holder t to create … a replica on a
    /// specific server with a special command" (§3.1 method 3).
    pub fn create_replica_on(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        target: NodeId,
    ) -> DeceitResult<OpResult<()>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            c.check_up(target).map_err(|_| {
                DeceitError::InvalidCommand(format!("target {target} is not a live server"))
            })?;
            let (key, mut latency) = c.resolve_key(via, seg, None)?;
            let holder = c
                .find_reachable_token_holder(via, key)
                .ok_or(DeceitError::WriteUnavailable(seg))?;
            if c.server(target).replicas.contains(&key) {
                return Err(DeceitError::InvalidCommand(format!(
                    "{target} already holds a replica of {seg}"
                )));
            }
            latency += c.round_trip(via, holder, 48, 16)?;
            c.generate_replica_now(holder, key, target);
            if !c.server(target).replicas.contains(&key) {
                return Err(DeceitError::Unavailable(seg));
            }
            Ok(((), latency))
        })
    }

    /// "… or delete a replica on a specific server" (§3.1 method 3). The
    /// last replica of a version cannot be deleted this way.
    pub fn delete_replica_on(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        target: NodeId,
    ) -> DeceitResult<OpResult<()>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            let (key, mut latency) = c.resolve_key(via, seg, None)?;
            if !c.server(target).replicas.contains(&key) {
                return Err(DeceitError::InvalidCommand(format!(
                    "{target} holds no replica of {seg}"
                )));
            }
            if c.all_replica_holders(key).len() <= 1 {
                return Err(DeceitError::InvalidCommand(
                    "cannot delete the last replica".to_string(),
                ));
            }
            let holder = c
                .find_reachable_token_holder(via, key)
                .ok_or(DeceitError::WriteUnavailable(seg))?;
            latency += c.round_trip(via, holder, 48, 16)?;
            // If the target holds the token, pass it to another holder
            // first so the primary never disappears.
            if holder == target {
                let other = c
                    .all_replica_holders(key)
                    .into_iter()
                    .find(|&h| h != target && c.net.reachable(via, h))
                    .ok_or_else(|| {
                        DeceitError::InvalidCommand(
                            "no other replica to move the token to".to_string(),
                        )
                    })?;
                latency += c.pass_token(target, other, key)?;
            }
            let token_holder = c.find_reachable_token_holder(via, key).unwrap_or(holder);
            c.destroy_replica(target, key);
            if let Some(mut token) = c.server(token_holder).tokens.get(&key) {
                token.holders.remove(&target);
                c.server(token_holder).tokens.put_async(key, token);
                c.schedule_flush(token_holder, key.0);
            }
            c.stats.incr("core/replicas/command_deleted");
            Ok(((), latency))
        })
    }

    /// Explicitly creates a new version of a file (§3.5: "By using this
    /// form of file name, specific versions can be created"). Returns the
    /// new major version number.
    pub fn create_version(&mut self, via: NodeId, seg: SegmentId) -> DeceitResult<OpResult<u64>> {
        self.client_op_scoped(via, OpScope::Global, |c| {
            let (key, mut latency) = c.resolve_key(via, seg, None)?;
            let (new_key, gen) = c.generate_token(via, key)?;
            latency += gen;
            Ok((new_key.1, latency))
        })
    }

    /// Deletes one version of a file everywhere reachable ("a user can …
    /// ask Deceit to delete obsolete versions", §2.1).
    pub fn delete_version(
        &mut self,
        via: NodeId,
        seg: SegmentId,
        major: u64,
    ) -> DeceitResult<OpResult<()>> {
        // Conflict-log pruning needs `&mut`, so the body runs outside
        // the scoped helper; this command is exclusive-path only.
        self.apply_read_touches();
        self.fire_due(OpScope::Global);
        self.check_up(via)?;
        self.server(via).ops_served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = (seg, major);
        let holders = self.all_replica_holders(key);
        if holders.is_empty() {
            return Err(DeceitError::NoSuchVersion(seg, major));
        }
        let mut latency = SimDuration::ZERO;
        let mut scratch = SimDuration::ZERO;
        let _ = self.count_available_replicas(via, key, &mut scratch);
        latency += scratch;
        for h in holders {
            if self.net.reachable(via, h) {
                self.destroy_replica(h, key);
            }
            self.server(h).tokens.delete_sync(&key);
        }
        // Clear any logged conflicts this deletion resolves.
        self.conflicts
            .retain(|rec| !(rec.seg == seg && (rec.majors.0 == major || rec.majors.1 == major)));
        self.stats.incr("core/versions/deleted");
        self.clock_add(latency);
        self.fire_due(OpScope::Global);
        Ok(OpResult { value: (), latency })
    }
}
