//! Write-token acquisition and generation.
//!
//! §3.3: "A server that lacks a token must acquire it before distributing
//! an update for that file. Token acquisition requires one round. … To
//! acquire a token, a server broadcasts a token request to that file
//! group. The server that holds the token broadcasts a token pass in
//! response."
//!
//! §3.5 ("Token Generation"): when no token is available, a new one may be
//! generated subject to the file's write-availability policy; the new
//! token carries a fresh globally unique major version number and
//! "represents a distinct new file with a distinct set of replicas."
//!
//! Everything here is keyed by one replica key, so however far a token
//! travels between servers it never leaves its file's shard: the whole
//! module runs through `&self` under the file's shard ring lock.

use deceit_isis::broadcast_round;
use deceit_net::NodeId;
use deceit_sim::SimDuration;

use crate::cluster::Cluster;
use crate::error::{DeceitError, DeceitResult};
use crate::params::{FileParams, WriteAvailability};
use crate::replica::Replica;
use crate::server::{ReplicaKey, SegmentId};
use crate::token::WriteToken;
use crate::trace_events::ProtocolEvent;
use crate::version::VersionPair;

impl Cluster {
    /// Ensures `via` holds an enabled write token for the most recent
    /// available version of `seg`, acquiring or generating one as needed.
    ///
    /// Returns the replica key the token governs (possibly a *new* major
    /// if a token had to be generated) and the time spent.
    pub fn ensure_token(
        &mut self,
        via: NodeId,
        seg: SegmentId,
    ) -> DeceitResult<(ReplicaKey, SimDuration)> {
        self.ensure_token_for_write(via, seg, false)
    }

    /// [`Cluster::ensure_token`] with the §3.3 piggyback option: when
    /// `piggyback` is set and this acquisition precedes an update, the
    /// token request rides in the same message as the update broadcast,
    /// so the request round costs nothing extra here.
    pub(crate) fn ensure_token_for_write(
        &self,
        via: NodeId,
        seg: SegmentId,
        piggyback: bool,
    ) -> DeceitResult<(ReplicaKey, SimDuration)> {
        let (key, mut latency) = self.resolve_key(via, seg, None)?;

        // Fast path: token already held (the stream-of-updates case the
        // protocol is optimized for).
        if self.server(via).holds_token(key) {
            latency += self.check_token_enabled(via, key)?;
            return Ok((key, latency));
        }

        // One token-request round to the file group (free when the request
        // piggybacks on the update broadcast).
        let (gid, search) = self.locate_group(via, seg);
        latency += search;
        let members: Vec<NodeId> = gid.and_then(|g| self.groups.members_vec(g)).unwrap_or_default();
        let holder = if piggyback {
            // Reachability still decides who can answer; no round charged.
            self.stats.incr("core/token/piggybacked_acquisitions");
            members
                .iter()
                .copied()
                .find(|&m| self.net.reachable(via, m) && self.server(m).holds_token(key))
        } else {
            let outcome = broadcast_round(&self.net, via, members.clone(), 40, 48, "token-request");
            latency += outcome.full_latency();
            self.server(via).observe_round(&outcome);
            members
                .iter()
                .copied()
                .find(|&m| outcome.heard_from(m) && self.server(m).holds_token(key))
        };

        match holder {
            Some(h) => {
                latency += self.pass_token(h, via, key)?;
                latency += self.check_token_enabled(via, key)?;
                Ok((key, latency))
            }
            None => {
                // Token loss (§3.6 "Token Crash" / "Partition"): generate a
                // new token, policy permitting.
                let (new_key, gen_latency) = self.generate_token(via, key)?;
                latency += gen_latency;
                Ok((new_key, latency))
            }
        }
    }

    /// Moves the token from `holder` to `to` (the "token pass" broadcast).
    /// `to` becomes a replica holder, receiving the data if it lacks it.
    pub(crate) fn pass_token(
        &self,
        holder: NodeId,
        to: NodeId,
        key: ReplicaKey,
    ) -> DeceitResult<SimDuration> {
        let mut latency = SimDuration::ZERO;
        // Revoke the holder-local read lease *first*: the lease asserts
        // "my replica is the stream's acked prefix", which stops being
        // maintainable the moment the token starts moving. The lock-free
        // read path re-checks the lease after its copy-out, so removing
        // it before any token state changes guarantees no reader serves
        // across the movement (see `Cluster::try_read_leased`).
        if self.server(holder).leases.remove(&key).is_some() {
            self.emit_from(holder, ProtocolEvent::LeaseRevoked { seg: key.0, on: holder });
        }
        let mut token =
            self.server(holder).tokens.get(&key).ok_or(DeceitError::WriteUnavailable(key.0))?;

        // The new holder needs a *current* replica: the primary copy must
        // be local so unstable-period reads can be served (§3.4), and it
        // must embed every update through the token's version pair before
        // new updates are stamped on top. A lagging local copy (updates
        // still in flight) is replaced by state transfer from the old
        // primary.
        let lagging =
            self.server(to).replicas.get(&key).map(|r| r.version != token.version).unwrap_or(false);
        if lagging {
            self.server(to).replicas.delete_sync(&key);
            self.server(to).drop_receiver(&key);
        }
        if !self.server(to).replicas.contains(&key) {
            let src =
                self.server(holder).replicas.get(&key).ok_or(DeceitError::Unavailable(key.0))?;
            let bytes = src.data.len() as u64;
            let blast = self.cfg.blast;
            if let Some(d) = deceit_isis::xfer::transfer_state(
                &self.net,
                &blast,
                holder,
                to,
                bytes,
                "replica-xfer",
            )
            .duration()
            {
                latency += d;
            }
            let now = self.now();
            let replica = Replica::cloned_from(&src, now);
            latency += self.cfg.disk.write_cost(replica.data.len() + 64);
            self.server(to).replicas.put_sync(key, replica);
            token.holders.insert(to);
            self.emit_from(to, ProtocolEvent::ReplicaGenerated { seg: key.0, on: to });
        }

        // Transfer token state: durable at both ends (§3.5).
        self.server(holder).tokens.delete_sync(&key);
        self.server(holder).streams.remove(&key);
        self.server(to).tokens.put_sync(key, token);
        // The new holder applies its own writes directly; any stale
        // reordering buffer must not hold back future received updates.
        self.server(to).drop_receiver(&key);
        latency += self.cfg.disk.write_cost(64);
        if let Some((gid, _)) = self.group_members(key.0) {
            latency += self.ensure_member(gid, to);
        }
        self.stats.incr("core/token/passes");
        self.emit_from(to, ProtocolEvent::TokenAcquired { seg: key.0, server: to, from: holder });
        Ok(latency)
    }

    /// Verifies (and if possible restores) the enabled state of a held
    /// token under the file's availability policy (§4: at "medium" a token
    /// is disabled whenever fewer than a majority of replicas are
    /// available).
    pub(crate) fn check_token_enabled(
        &self,
        via: NodeId,
        key: ReplicaKey,
    ) -> DeceitResult<SimDuration> {
        let params = self.params_of(via, key);
        if params.availability != WriteAvailability::Medium {
            return Ok(SimDuration::ZERO);
        }
        // Steady-state fast path, one clone-free probe under the slot
        // lock: every known holder reachable, the level satisfied, the
        // token enabled — nothing to rewrite, nothing to verify further
        // (the holder set is the §3.1 upper bound; when all of it
        // answers, the majority condition cannot fail).
        let steady = self.server(via).tokens.with_ref(&key, |t| {
            t.map(|t| {
                t.enabled
                    && t.holders.len() >= params.min_replicas
                    && t.holders.iter().all(|&h| self.net.reachable(via, h))
            })
        });
        if steady == Some(true) {
            return Ok(SimDuration::ZERO);
        }
        let Some(mut token) = self.server(via).tokens.get(&key) else {
            // The token vanished between the steady probe and here (a
            // concurrent crash wiped the holder's volatile state):
            // writes are unavailable at this replica, not a panic.
            self.stats.incr("core/token/disabled");
            return Err(DeceitError::WriteUnavailable(key.0));
        };
        // If every known holder is reachable (no failure in sight) but the
        // minimum replica level outruns the holder set — the raised-level
        // case of §3.1 method 2 — the holder generates replicas now rather
        // than refusing writes.
        let all_known_reachable = token.holders.iter().all(|&h| self.net.reachable(via, h));
        if all_known_reachable && token.holders.len() < params.min_replicas {
            self.fill_min_replicas_now(via, key);
            // The fill updates the holder set on the stored token; if
            // it is gone the same concurrent-crash reasoning applies.
            token = match self.server(via).tokens.get(&key) {
                Some(t) => t,
                None => {
                    self.stats.incr("core/token/disabled");
                    return Err(DeceitError::WriteUnavailable(key.0));
                }
            };
        }
        let reachable = self.reachable_replica_holders(via, key).len();
        let majority = token.majority(params.min_replicas);
        let ok = reachable >= majority;
        if ok != token.enabled {
            token.enabled = ok;
            self.server(via).tokens.put_async(key, token);
            self.schedule_flush(via, key.0);
        }
        if ok {
            Ok(SimDuration::ZERO)
        } else {
            self.stats.incr("core/token/disabled");
            Err(DeceitError::WriteUnavailable(key.0))
        }
    }

    /// Generates a brand-new token for a new major version branched off
    /// the newest replica reachable from `via` (§3.5 "Token Generation").
    pub(crate) fn generate_token(
        &self,
        via: NodeId,
        base_key: ReplicaKey,
    ) -> DeceitResult<(ReplicaKey, SimDuration)> {
        let seg = base_key.0;
        let mut latency = SimDuration::ZERO;

        // Make sure the generating server has a base replica to branch
        // from ("File data is drawn from the existing available replica").
        if !self.server(via).replicas.contains(&base_key) {
            let holders = self.reachable_replica_holders(via, base_key);
            let src_server =
                holders.into_iter().find(|&h| h != via).ok_or(DeceitError::Unavailable(seg))?;
            // The holder list said src_server has the replica, but a
            // racing crash may have taken it since: treat as unavailable.
            let src = self
                .server(src_server)
                .replicas
                .get(&base_key)
                .ok_or(DeceitError::Unavailable(seg))?;
            let blast = self.cfg.blast;
            if let Some(d) = deceit_isis::xfer::transfer_state(
                &self.net,
                &blast,
                src_server,
                via,
                src.data.len() as u64,
                "replica-xfer",
            )
            .duration()
            {
                latency += d;
            }
            let now = self.now();
            self.server(via).replicas.put_sync(base_key, Replica::cloned_from(&src, now));
        }

        let base = self.server(via).replicas.get(&base_key).ok_or(DeceitError::Unavailable(seg))?;
        let params = base.params;

        // Policy gate (§3.5, §4).
        match params.availability {
            WriteAvailability::Low => {
                self.stats.incr("core/token/generation_refused");
                return Err(DeceitError::WriteUnavailable(seg));
            }
            WriteAvailability::Medium => {
                // "the total number of replicas is assumed to be the
                // minimum replica level" for a server without the token;
                // availability is counted by broadcasting an inquiry.
                let available = self.count_available_replicas(via, base_key, &mut latency);
                let majority = FileParams::majority_of(params.min_replicas.max(1));
                if available < majority {
                    self.stats.incr("core/token/generation_refused");
                    return Err(DeceitError::WriteUnavailable(seg));
                }
            }
            WriteAvailability::High => {}
        }

        // Build the new version: unique major, same subversion (§3.5:
        // "picking a globally unique major version number v1' and building
        // a token with version pair (v1', v2)").
        let new_major = self.alloc_major();
        let new_key = (seg, new_major);
        let branch_parent = base.version;
        self.with_branch_table(seg, |t| t.record_branch(new_major, branch_parent));
        let version = VersionPair { major: new_major, sub: base.version.sub };

        let now = self.now();
        let mut replica = Replica::cloned_from(&base, now);
        replica.version = version;
        latency += self.cfg.disk.write_cost(replica.data.len() + 64);
        self.server(via).replicas.put_sync(new_key, replica);
        self.server(via).tokens.put_sync(new_key, WriteToken::new(version, via));

        // Group membership for the new version lives in the same file
        // group; make sure the generator is in it.
        if let Some((gid, _)) = self.group_members(seg) {
            latency += self.ensure_member(gid, via);
        } else {
            // Creation only fails when a racing generator created the
            // group first; fall back to lookup, and if that misses too
            // the group service is refusing us — fail the generation.
            let gid = match self.groups.create(&crate::cluster::group_name(seg), via) {
                Ok(gid) => gid,
                Err(_) => {
                    self.group_members(seg).map(|(g, _)| g).ok_or(DeceitError::Unavailable(seg))?
                }
            };
            self.server(via).group_cache.insert(seg, gid);
        }

        self.stats.incr("core/token/generated");
        self.emit_from(via, ProtocolEvent::TokenGenerated { seg, server: via, major: new_major });

        // Satisfy the minimum replica level for the new version.
        self.schedule_min_replica_fill(via, new_key);
        Ok((new_key, latency))
    }

    /// Counts replicas of `key` reachable from `via` via an inquiry round
    /// (§3.5: "the number of available replicas is determined by
    /// broadcasting an inquiry to the file group").
    pub(crate) fn count_available_replicas(
        &self,
        via: NodeId,
        key: ReplicaKey,
        latency: &mut SimDuration,
    ) -> usize {
        let members: Vec<NodeId> = self
            .group_members(key.0)
            .map(|(_, m)| m)
            .unwrap_or_else(|| self.all_replica_holders(key));
        let outcome = broadcast_round(&self.net, via, members, 32, 24, "replica-inquiry");
        *latency += outcome.full_latency();
        let mut count = 0;
        for (m, _) in &outcome.replies {
            if self.server(*m).replicas.contains(&key) {
                count += 1;
            }
        }
        // Self-delivery may not be in members if via never joined.
        if self.server(via).replicas.contains(&key) && !outcome.heard_from(via) {
            count += 1;
        }
        count
    }

    /// The parameters in force for a replica as seen by `server` (falling
    /// back to defaults if it holds no copy — callers only use this when a
    /// local replica exists).
    pub(crate) fn params_of(&self, server: NodeId, key: ReplicaKey) -> FileParams {
        self.server(server).replicas.with_ref(&key, |r| r.map(|r| r.params).unwrap_or_default())
    }
}
