//! The Deceit protocols, as operations on a [`crate::Cluster`].
//!
//! Each submodule implements one protocol family from the paper:
//!
//! * [`lifecycle`] — segment create/delete (§5.1).
//! * [`locate`] — file-group location, the global-search cost of §3.2.
//! * [`token`] — write-token acquisition and generation (§3.3, §3.5).
//! * [`mod@write`] — update distribution with write-safety reply collection
//!   (§3.2–3.4, §4).
//! * [`read`] — local reads, forwarding, and the stable-replica search
//!   (§2.1, §3.4, §3.6).
//! * [`stability`] — stability notification (§3.4).
//! * [`replicate`] — replica generation (all four §3.1 methods), LRU
//!   deletion of extras, and migration.
//! * [`recovery`] — crash recovery and partition reconciliation (§3.6).
//! * [`commands`] — the special user commands (§2.1): list versions,
//!   locate replicas, explicit replica placement, version deletion.
//! * [`apply`] — the deferred-event handlers (propagation, flushing,
//!   stabilize checks, background generation).

pub mod apply;
pub mod commands;
pub mod lifecycle;
pub mod locate;
pub mod read;
pub mod recovery;
pub mod replicate;
pub mod stability;
pub mod token;
pub mod write;
