//! Deferred-event handlers.
//!
//! Handlers run through `&self`: the pump fires a slot's events under the
//! shared cell lock plus that slot's ring lock, and every handler touches
//! only hot state of its own shard (flush events carry the segment that
//! dirtied them, so even write-back is slot-local).

use deceit_sim::SimTime;

use crate::cluster::Cluster;
use crate::event::Pending;

impl Cluster {
    /// Dispatches one due event. `at` is the event's scheduled time; the
    /// cluster clock has already been advanced to at least `at`.
    pub(crate) fn handle_event(&self, _at: SimTime, ev: Pending) {
        match ev {
            Pending::ApplyUpdate { server, key, update } => {
                if !self.net.is_up(server) {
                    return;
                }
                if !self.server(server).replicas.contains(&key) {
                    return; // replica deleted while the update was in flight
                }
                // Route through the ordered-delivery buffer so updates
                // apply in identical order regardless of arrival (§3.3).
                self.apply_updates_ordered(server, key, std::slice::from_ref(&update), false);
                self.schedule_flush(server, key.0);
                self.stats.incr("core/applies/remote");
            }
            Pending::FlushServer { server, seg } => {
                if !self.net.is_up(server) {
                    return;
                }
                let s = self.server(server);
                let mut cost = s.replicas.flush_slot_of(seg);
                cost += s.tokens.flush_slot_of(seg);
                self.stats.record_duration("disk/flush_cost", cost);
            }
            Pending::PropagateStream { holder, key } => {
                self.propagate_stream(holder, key);
            }
            Pending::StabilizeCheck { server, key, epoch } => {
                self.stabilize_check(server, key, epoch);
            }
            Pending::ReadRepair { server, key } => {
                self.read_repair(server, key);
            }
            Pending::MigrateReplica { server, key } => {
                self.migrate_replica(server, key);
            }
            Pending::GenerateReplica { holder, key, target } => {
                if !self.net.is_up(holder) {
                    return;
                }
                self.generate_replica_now(holder, key, target);
            }
        }
    }
}
