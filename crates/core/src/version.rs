//! Version pairs and the history tree.
//!
//! §3.5: "Deceit does not explicitly store the full history of a replica.
//! Instead, Deceit maintains a one-to-one mapping from histories to integer
//! pairs (v1, v2) where v1 is the major version number, and v2 is the
//! subversion number. v2 is incremented on every update, and v1 is changed
//! to a new unique number every time there is a potential branch in the
//! history tree. These branch points are recorded … so that version number
//! pairs can be compared as if the histories that they represent were
//! available."

use std::collections::BTreeMap;
use std::fmt;

/// A compact name for one update history: `(major, sub)`.
///
/// The relation `(v1 == v1' && v2 < v2') ⇒ ancestor` always holds; across
/// majors the [`BranchTable`] supplies the lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionPair {
    /// Major version number; changes at every potential history branch.
    pub major: u64,
    /// Subversion number (the literature's "update counter"); increments on
    /// every update.
    pub sub: u64,
}

impl VersionPair {
    /// The first version of a new file: major as allocated, sub 0.
    pub const fn initial(major: u64) -> Self {
        VersionPair { major, sub: 0 }
    }

    /// The pair after one more update within the same major.
    pub const fn bump(self) -> Self {
        VersionPair { major: self.major, sub: self.sub + 1 }
    }
}

impl fmt::Display for VersionPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.major, self.sub)
    }
}

/// How two histories relate in the history tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionRelation {
    /// Identical histories.
    Equal,
    /// Left is a strict prefix (ancestor) of right.
    Ancestor,
    /// Left is a strict extension (descendant) of right.
    Descendant,
    /// Neither is a prefix of the other (§3.5: "incomparable") — the
    /// partition-conflict case.
    Incomparable,
}

/// The recorded branch points of one file's history tree.
///
/// Maps each non-initial major version number to the version pair at which
/// it branched off its parent. Majors are allocated from a monotonically
/// increasing counter (the paper: "Deceit selects major version numbers
/// carefully to insure global uniqueness"), so every parent major is
/// strictly smaller than its children and lineage walks terminate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchTable {
    parents: BTreeMap<u64, VersionPair>,
}

impl BranchTable {
    /// An empty table (single-major linear history).
    pub fn new() -> Self {
        BranchTable::default()
    }

    /// Records that `new_major` branched from `parent` (§3.5 "Token
    /// Generation": the new token stores the original pair).
    ///
    /// # Panics
    ///
    /// Panics if `new_major` is not greater than the parent major —
    /// allocator discipline guarantees this in the system, and violating it
    /// would make lineage walks diverge.
    pub fn record_branch(&mut self, new_major: u64, parent: VersionPair) {
        assert!(new_major > parent.major, "branch major {new_major} must exceed parent {parent}");
        self.parents.insert(new_major, parent);
    }

    /// The branch point of `major`, if it is not a root.
    pub fn parent_of(&self, major: u64) -> Option<VersionPair> {
        self.parents.get(&major).copied()
    }

    /// Merges another table (used when partitions heal and the two sides
    /// exchange the branch records they created independently).
    pub fn merge(&mut self, other: &BranchTable) {
        for (&m, &p) in &other.parents {
            self.parents.insert(m, p);
        }
    }

    /// The lineage of `v`: `v` itself, then each branch point back to the
    /// root, e.g. `[(5, 3), (2, 7), (0, 4)]` for a twice-branched history.
    pub fn lineage(&self, v: VersionPair) -> Vec<VersionPair> {
        let mut out = vec![v];
        let mut cur = v;
        while let Some(parent) = self.parent_of(cur.major) {
            assert!(parent.major < cur.major, "corrupt branch table");
            out.push(parent);
            cur = parent;
        }
        out
    }

    /// Whether history `a` is a strict ancestor of history `b`.
    pub fn is_ancestor(&self, a: VersionPair, b: VersionPair) -> bool {
        if a == b {
            return false;
        }
        // a is an ancestor of b iff a lies on b's lineage: either within
        // b's own major (a.sub < b.sub), or at/before one of b's recorded
        // branch points.
        self.lineage(b).iter().any(|anc| anc.major == a.major && a.sub <= anc.sub)
            && !(a.major == b.major && a.sub >= b.sub)
    }

    /// Full relation between two histories.
    pub fn relation(&self, a: VersionPair, b: VersionPair) -> VersionRelation {
        if a == b {
            VersionRelation::Equal
        } else if self.is_ancestor(a, b) {
            VersionRelation::Ancestor
        } else if self.is_ancestor(b, a) {
            VersionRelation::Descendant
        } else {
            VersionRelation::Incomparable
        }
    }

    /// Number of recorded branch points.
    pub fn branch_count(&self) -> usize {
        self.parents.len()
    }

    /// All recorded (major, parent) entries.
    pub fn entries(&self) -> impl Iterator<Item = (u64, VersionPair)> + '_ {
        self.parents.iter().map(|(&m, &p)| (m, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(major: u64, sub: u64) -> VersionPair {
        VersionPair { major, sub }
    }

    #[test]
    fn same_major_ordering() {
        let t = BranchTable::new();
        // The paper's invariant: (v1 == v1' && v2 < v2') ⇒ ancestor.
        assert!(t.is_ancestor(vp(0, 1), vp(0, 5)));
        assert!(!t.is_ancestor(vp(0, 5), vp(0, 1)));
        assert_eq!(t.relation(vp(0, 1), vp(0, 5)), VersionRelation::Ancestor);
        assert_eq!(t.relation(vp(0, 5), vp(0, 1)), VersionRelation::Descendant);
        assert_eq!(t.relation(vp(0, 3), vp(0, 3)), VersionRelation::Equal);
    }

    #[test]
    fn different_roots_incomparable() {
        let t = BranchTable::new();
        assert_eq!(t.relation(vp(0, 3), vp(1, 3)), VersionRelation::Incomparable);
    }

    #[test]
    fn branch_makes_prefix_an_ancestor() {
        let mut t = BranchTable::new();
        // Major 1 branched from (0, 4).
        t.record_branch(1, vp(0, 4));
        // Everything up to (0,4) is an ancestor of any (1, _).
        assert!(t.is_ancestor(vp(0, 2), vp(1, 0)));
        assert!(t.is_ancestor(vp(0, 4), vp(1, 0)));
        // Updates past the branch point are not.
        assert_eq!(t.relation(vp(0, 5), vp(1, 0)), VersionRelation::Incomparable);
        // And the descendant relation is the mirror.
        assert_eq!(t.relation(vp(1, 3), vp(0, 4)), VersionRelation::Descendant);
    }

    #[test]
    fn sibling_branches_are_incomparable() {
        let mut t = BranchTable::new();
        // The partition scenario: both sides branch from (0, 4).
        t.record_branch(1, vp(0, 4));
        t.record_branch(2, vp(0, 4));
        assert_eq!(t.relation(vp(1, 2), vp(2, 7)), VersionRelation::Incomparable);
        // But both descend from the common prefix.
        assert!(t.is_ancestor(vp(0, 4), vp(1, 2)));
        assert!(t.is_ancestor(vp(0, 4), vp(2, 7)));
    }

    #[test]
    fn deep_lineage_walk() {
        let mut t = BranchTable::new();
        t.record_branch(1, vp(0, 2));
        t.record_branch(2, vp(1, 3));
        t.record_branch(3, vp(2, 1));
        assert_eq!(t.lineage(vp(3, 9)), vec![vp(3, 9), vp(2, 1), vp(1, 3), vp(0, 2)]);
        assert!(t.is_ancestor(vp(0, 0), vp(3, 9)));
        assert!(t.is_ancestor(vp(1, 1), vp(3, 9)));
        assert!(t.is_ancestor(vp(2, 0), vp(3, 9)));
        // Past the branch point on an intermediate major: incomparable.
        assert_eq!(t.relation(vp(1, 4), vp(3, 9)), VersionRelation::Incomparable);
        assert_eq!(t.branch_count(), 3);
    }

    #[test]
    fn merge_unions_branch_records() {
        let mut a = BranchTable::new();
        a.record_branch(1, vp(0, 4));
        let mut b = BranchTable::new();
        b.record_branch(2, vp(0, 4));
        a.merge(&b);
        assert_eq!(a.relation(vp(1, 0), vp(2, 0)), VersionRelation::Incomparable);
        assert_eq!(a.branch_count(), 2);
    }

    #[test]
    fn bump_and_initial() {
        let v = VersionPair::initial(7);
        assert_eq!(v, vp(7, 0));
        assert_eq!(v.bump(), vp(7, 1));
        assert_eq!(v.to_string(), "(7,0)");
    }

    #[test]
    #[should_panic(expected = "must exceed parent")]
    fn branch_major_must_increase() {
        let mut t = BranchTable::new();
        t.record_branch(1, vp(3, 0));
    }

    #[test]
    fn ancestor_of_branch_point_itself() {
        let mut t = BranchTable::new();
        t.record_branch(5, vp(2, 8));
        // The branch point (2,8) is an ancestor of (5,0) but (2,9) is not.
        assert!(t.is_ancestor(vp(2, 8), vp(5, 0)));
        assert!(!t.is_ancestor(vp(2, 9), vp(5, 0)));
    }
}
