//! Offline consistency auditor: an executable statement of the paper's
//! per-file contract, checked against recorded operation histories.
//!
//! The differential scenarios pin *scripted* runs to the simulator;
//! nothing there searches for bad interleavings. This module is the other
//! half of a Jepsen-style setup: concurrent clients journal every
//! invoke/ack pair (plus every injected fault) into a [`History`], and
//! [`audit`] replays that history against the guarantees the paper makes
//! for a file written as a single-writer append stream:
//!
//! * **Valid prefixes** — a read returns some prefix of the bytes the
//!   writer produced, never a torn or garbled state (§3.2: updates are
//!   atomic and ordered per file).
//! * **Monotone sessions** — the lengths/versions one client observes for
//!   one file never regress (§3.4 stability + §3.3 single write token).
//! * **Causality** — a read never returns bytes whose write had not even
//!   been *invoked* when the read was acknowledged.
//! * **Acked durability** — with `write_safety = N`, an acknowledged
//!   write survives any run in which at most N−1 servers are ever down
//!   at once (§4: "file safety … number of machines which must fail
//!   simultaneously in order to lose the file").
//! * **Version monotonicity** — acknowledged write versions advance
//!   strictly; the final stabilized version dominates everything any
//!   client observed (§3.5).
//! * **Replica floor** — after every server is back and partitions heal,
//!   the file keeps at least `min_replicas` copies (§3.1).
//!
//! The history format is deliberately transport-agnostic (plain ids and
//! byte lengths) so the deterministic simulator and the live threaded
//! runtime journal into the same artifact and are audited by the same
//! code.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// FNV-1a 64-bit — the payload fingerprint recorded in acks and checked
/// against the expected prefix model. Stable across platforms, no deps.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One recorded event. `seq` is a globally unique total-order stamp
/// (invokes are stamped before the request is sent, acks after the reply
/// is in hand, so overlap is conservatively wide).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub seq: u64,
    /// Journal owner: client id for op events, `u32::MAX` for the
    /// nemesis journal that records faults and final states.
    pub client: u32,
    pub body: EventBody,
}

/// What happened at this point in the history.
#[derive(Debug, Clone, PartialEq)]
pub enum EventBody {
    /// A client is about to send an operation. `op` is the invoke's own
    /// `seq`, echoed by the matching ack.
    Invoke { op: u64, call: OpCall },
    /// The reply (or transport failure) for a previous invoke.
    Ack { op: u64, outcome: OpOutcome },
    /// The nemesis injected a fault (or a settle barrier).
    Fault(FaultEvent),
    /// Post-storm ground truth for one file, read after every server is
    /// restarted, partitions are healed, and the cell has settled.
    FinalState { file: u64, len: usize, hash: u64, version: (u64, u64), replicas: usize },
}

/// The operation side of an invoke, reduced to what the auditor needs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpCall {
    Write { file: u64, offset: usize, data: Vec<u8> },
    Read { file: u64, offset: usize },
    Getattr { file: u64 },
    Create { name: String },
    SetParams { file: u64, write_safety: usize, min_replicas: usize },
    Other { what: &'static str },
}

/// The reply side of an ack.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// Read data: length and FNV-1a hash of the returned bytes.
    Data { len: usize, hash: u64 },
    /// Attributes: observed size, observed version pair, and the file
    /// the attributes describe (creates learn their file id here).
    Attr { file: u64, size: usize, version: (u64, u64) },
    /// A void success (set-params, remove, …).
    Ok,
    /// The server answered with an NFS error: the op definitely did not
    /// take effect in a new way (reads) or was refused (writes).
    Denied { error: String },
    /// Transport failure: the op is *ambiguous* — a write may or may not
    /// have applied. The auditor treats it as unacked.
    Lost,
}

/// A nemesis action, recorded in the same total order as the ops it
/// interferes with.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    Crash { server: u32 },
    Restart { server: u32 },
    Split { groups: Vec<Vec<u32>> },
    Heal,
    Settle,
}

/// A merged, seq-ordered operation history.
#[derive(Debug, Clone, Default)]
pub struct History {
    pub events: Vec<Event>,
}

impl History {
    /// Builds a history from journal fragments, sorting by stamp.
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.seq);
        History { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the history as a JSON array — the artifact CI uploads
    /// when a storm fails. Hand-rolled (the vendored serde stand-in has
    /// no serializer), mirroring `ObsReport::to_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\n  \"events\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            out.push_str(&event_json(ev));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn event_json(ev: &Event) -> String {
    let body = match &ev.body {
        EventBody::Invoke { op, call } => {
            let call = match call {
                OpCall::Write { file, offset, data } => format!(
                    "\"kind\":\"write\",\"file\":{file},\"offset\":{offset},\"data\":{}",
                    json_str(&String::from_utf8_lossy(data))
                ),
                OpCall::Read { file, offset } => {
                    format!("\"kind\":\"read\",\"file\":{file},\"offset\":{offset}")
                }
                OpCall::Getattr { file } => format!("\"kind\":\"getattr\",\"file\":{file}"),
                OpCall::Create { name } => format!("\"kind\":\"create\",\"name\":{}", json_str(name)),
                OpCall::SetParams { file, write_safety, min_replicas } => format!(
                    "\"kind\":\"set_params\",\"file\":{file},\"write_safety\":{write_safety},\"min_replicas\":{min_replicas}"
                ),
                OpCall::Other { what } => format!("\"kind\":{}", json_str(what)),
            };
            format!("\"invoke\":{{\"op\":{op},{call}}}")
        }
        EventBody::Ack { op, outcome } => {
            let oc = match outcome {
                OpOutcome::Data { len, hash } => format!("\"data\":{{\"len\":{len},\"hash\":{hash}}}"),
                OpOutcome::Attr { file, size, version } => format!(
                    "\"attr\":{{\"file\":{file},\"size\":{size},\"version\":[{},{}]}}",
                    version.0, version.1
                ),
                OpOutcome::Ok => "\"ok\":true".into(),
                OpOutcome::Denied { error } => format!("\"denied\":{}", json_str(error)),
                OpOutcome::Lost => "\"lost\":true".into(),
            };
            format!("\"ack\":{{\"op\":{op},{oc}}}")
        }
        EventBody::Fault(fault) => {
            let f = match fault {
                FaultEvent::Crash { server } => format!("\"crash\":{server}"),
                FaultEvent::Restart { server } => format!("\"restart\":{server}"),
                FaultEvent::Split { groups } => {
                    let gs: Vec<String> = groups
                        .iter()
                        .map(|g| {
                            let ids: Vec<String> = g.iter().map(|n| n.to_string()).collect();
                            format!("[{}]", ids.join(","))
                        })
                        .collect();
                    format!("\"split\":[{}]", gs.join(","))
                }
                FaultEvent::Heal => "\"heal\":true".into(),
                FaultEvent::Settle => "\"settle\":true".into(),
            };
            format!("\"fault\":{{{f}}}")
        }
        EventBody::FinalState { file, len, hash, version, replicas } => format!(
            "\"final\":{{\"file\":{file},\"len\":{len},\"hash\":{hash},\"version\":[{},{}],\"replicas\":{replicas}}}",
            version.0, version.1
        ),
    };
    format!("{{\"seq\":{},\"client\":{},{body}}}", ev.seq, ev.client)
}

/// The per-file guarantees the audited workload was configured with.
#[derive(Debug, Clone, Copy)]
pub struct Contract {
    /// `FileParams::write_safety` for the audited files: acked writes
    /// survive any interval with at most `write_safety − 1` servers down.
    pub write_safety: usize,
    /// `FileParams::min_replicas` — the replica floor after heal.
    pub min_replicas: usize,
    /// Cell size (the floor can never exceed it).
    pub servers: usize,
}

/// One contract violation, anchored at the ack (or final-state) event
/// that exposed it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub check: &'static str,
    pub file: u64,
    pub seq: u64,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] file {} at seq {}: {}", self.check, self.file, self.seq, self.detail)
    }
}

/// What the auditor concluded about one history.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    pub violations: Vec<Violation>,
    pub reads_checked: usize,
    pub writes_acked: usize,
    pub faults_seen: usize,
    /// Largest number of servers ever down at once.
    pub max_concurrent_crashes: usize,
    /// Whether the crash load stayed within `write_safety − 1`, i.e.
    /// whether durability / monotonicity checks were applicable at all.
    pub durability_checked: bool,
}

impl AuditReport {
    pub fn is_green(&self) -> bool {
        self.violations.is_empty()
    }

    /// Compact multi-line rendering for failure reports.
    pub fn render(&self) -> String {
        let mut out = format!(
            "audit: {} violation(s) over {} read(s), {} acked write(s), {} fault(s); \
             max concurrent crashes {}; durability checks {}\n",
            self.violations.len(),
            self.reads_checked,
            self.writes_acked,
            self.faults_seen,
            self.max_concurrent_crashes,
            if self.durability_checked { "applied" } else { "SKIPPED (crash budget exceeded)" },
        );
        for v in self.violations.iter().take(16) {
            out.push_str(&format!("  {v}\n"));
        }
        if self.violations.len() > 16 {
            out.push_str(&format!("  … and {} more\n", self.violations.len() - 16));
        }
        out
    }
}

/// Per-file expected-content model: the append stream the (single)
/// writer produced, replayed attempt by attempt at invoke time.
#[derive(Default)]
struct FileModel {
    /// Bytes after applying every write invoked so far.
    content: Vec<u8>,
    /// Every length the file has legitimately had, with the hash of that
    /// prefix. Reads must land exactly on one of these states.
    states: BTreeMap<usize, u64>,
    /// Largest end offset any *acknowledged* write reached.
    acked_end: usize,
    /// Version of the most recent acknowledged write.
    last_acked_version: Option<(u64, u64)>,
    /// Largest version any client observed (writes + getattrs).
    max_observed_version: Option<(u64, u64)>,
}

/// What the auditor remembers about an invoke while waiting for its ack.
enum PendingOp {
    Write { file: u64, end: usize },
    Read { file: u64, offset: usize },
    Getattr { file: u64 },
    Other,
}

/// Replays `history` and checks the executable contract. The history is
/// expected to follow the nemesis discipline: at most one writer per
/// file, append-only chunks (retries of a failed/ambiguous chunk repeat
/// the same offset and bytes, which the model absorbs idempotently).
pub fn audit(history: &History, contract: &Contract) -> AuditReport {
    let mut report = AuditReport::default();
    let mut files: HashMap<u64, FileModel> = HashMap::new();
    let mut pending: HashMap<u64, PendingOp> = HashMap::new();
    // Per (client, file): largest length this session has observed — via
    // reads, write acks, or getattr sizes. Must never regress.
    let mut session_len: HashMap<(u32, u64), usize> = HashMap::new();
    // Per (client, file): largest version pair this session has observed.
    let mut session_version: HashMap<(u32, u64), (u64, u64)> = HashMap::new();
    let mut down: HashSet<u32> = HashSet::new();

    // First sweep: find the crash high-water mark, so monotonicity and
    // durability checks can be gated before we judge any ack.
    for ev in &history.events {
        match &ev.body {
            EventBody::Fault(FaultEvent::Crash { server }) => {
                down.insert(*server);
                report.max_concurrent_crashes = report.max_concurrent_crashes.max(down.len());
            }
            EventBody::Fault(FaultEvent::Restart { server }) => {
                down.remove(server);
            }
            _ => {}
        }
    }
    down.clear();
    report.durability_checked = report.max_concurrent_crashes < contract.write_safety;
    let strict = report.durability_checked;

    for ev in &history.events {
        match &ev.body {
            EventBody::Invoke { op, call } => {
                let slot = match call {
                    OpCall::Write { file, offset, data } => {
                        let model = files.entry(*file).or_default();
                        if model.states.is_empty() {
                            model.states.insert(0, fnv1a(&[]));
                        }
                        let end = offset + data.len();
                        if end > model.content.len() {
                            model.content.resize(end, 0);
                        }
                        model.content[*offset..end].copy_from_slice(data);
                        let len = model.content.len();
                        model.states.insert(len, fnv1a(&model.content));
                        PendingOp::Write { file: *file, end }
                    }
                    OpCall::Read { file, offset } => {
                        PendingOp::Read { file: *file, offset: *offset }
                    }
                    OpCall::Getattr { file } => PendingOp::Getattr { file: *file },
                    _ => PendingOp::Other,
                };
                pending.insert(*op, slot);
            }
            EventBody::Ack { op, outcome } => {
                let Some(slot) = pending.remove(op) else { continue };
                match (slot, outcome) {
                    (PendingOp::Read { file, offset }, OpOutcome::Data { len, hash }) => {
                        // Only whole-file reads (offset 0) are checked
                        // against the prefix model.
                        if offset != 0 {
                            continue;
                        }
                        report.reads_checked += 1;
                        let model = files.entry(file).or_default();
                        if model.states.is_empty() {
                            model.states.insert(0, fnv1a(&[]));
                        }
                        match model.states.get(len) {
                            None => report.violations.push(Violation {
                                check: "torn-read",
                                file,
                                seq: ev.seq,
                                detail: format!(
                                    "read length {len} is not a write boundary (valid: {:?})",
                                    model.states.keys().collect::<Vec<_>>()
                                ),
                            }),
                            Some(expect) if expect != hash => report.violations.push(Violation {
                                check: "torn-read",
                                file,
                                seq: ev.seq,
                                detail: format!(
                                    "read of {len} bytes hashed {hash:#x}, expected prefix hash {expect:#x}"
                                ),
                            }),
                            Some(_) => {}
                        }
                        if *len > model.content.len() {
                            report.violations.push(Violation {
                                check: "future-read",
                                file,
                                seq: ev.seq,
                                detail: format!(
                                    "read returned {len} bytes but only {} had been invoked",
                                    model.content.len()
                                ),
                            });
                        }
                        if strict {
                            let seen = session_len.entry((ev.client, file)).or_insert(0);
                            if *len < *seen {
                                report.violations.push(Violation {
                                    check: "non-monotone-read",
                                    file,
                                    seq: ev.seq,
                                    detail: format!(
                                        "client {} saw {} bytes after having seen {}",
                                        ev.client, len, *seen
                                    ),
                                });
                            }
                            *seen = (*seen).max(*len);
                        }
                    }
                    (PendingOp::Write { file, end }, OpOutcome::Attr { size, version, .. }) => {
                        report.writes_acked += 1;
                        let model = files.entry(file).or_default();
                        model.acked_end = model.acked_end.max(end).max(*size);
                        if let Some(last) = model.last_acked_version {
                            if strict && *version <= last {
                                report.violations.push(Violation {
                                    check: "write-version-regression",
                                    file,
                                    seq: ev.seq,
                                    detail: format!(
                                        "acked write version {version:?} does not advance past {last:?}"
                                    ),
                                });
                            }
                        }
                        model.last_acked_version = Some(*version);
                        bump_observed(&mut model.max_observed_version, *version);
                        if strict {
                            observe_session(
                                &mut session_len,
                                &mut session_version,
                                &mut report,
                                ev,
                                file,
                                *size,
                                *version,
                            );
                        }
                    }
                    (PendingOp::Getattr { file }, OpOutcome::Attr { size, version, .. }) => {
                        let model = files.entry(file).or_default();
                        bump_observed(&mut model.max_observed_version, *version);
                        if strict {
                            observe_session(
                                &mut session_len,
                                &mut session_version,
                                &mut report,
                                ev,
                                file,
                                *size,
                                *version,
                            );
                        }
                    }
                    // Denied / Lost acks and void successes carry no
                    // observation to check.
                    _ => {}
                }
            }
            EventBody::Fault(fault) => {
                report.faults_seen += 1;
                match fault {
                    FaultEvent::Crash { server } => {
                        down.insert(*server);
                    }
                    FaultEvent::Restart { server } => {
                        down.remove(server);
                    }
                    _ => {}
                }
            }
            EventBody::FinalState { file, len, hash, version, replicas } => {
                let model = files.entry(*file).or_default();
                if model.states.is_empty() {
                    model.states.insert(0, fnv1a(&[]));
                }
                match model.states.get(len) {
                    None => report.violations.push(Violation {
                        check: "final-state-unknown",
                        file: *file,
                        seq: ev.seq,
                        detail: format!(
                            "final length {len} is not a write boundary (valid: {:?})",
                            model.states.keys().collect::<Vec<_>>()
                        ),
                    }),
                    Some(expect) if expect != hash => report.violations.push(Violation {
                        check: "final-state-unknown",
                        file: *file,
                        seq: ev.seq,
                        detail: format!(
                            "final content of {len} bytes hashed {hash:#x}, expected {expect:#x}"
                        ),
                    }),
                    Some(_) => {}
                }
                if strict {
                    if *len < model.acked_end {
                        report.violations.push(Violation {
                            check: "acked-write-loss",
                            file: *file,
                            seq: ev.seq,
                            detail: format!(
                                "final length {len} lost acknowledged bytes through {} \
                                 (max concurrent crashes {} < write_safety {})",
                                model.acked_end,
                                report.max_concurrent_crashes,
                                contract.write_safety
                            ),
                        });
                    }
                    if let Some(max) = model.max_observed_version {
                        if *version < max {
                            report.violations.push(Violation {
                                check: "stabilized-version-regression",
                                file: *file,
                                seq: ev.seq,
                                detail: format!(
                                    "final version {version:?} is behind observed {max:?}"
                                ),
                            });
                        }
                    }
                }
                let floor = contract.min_replicas.min(contract.servers);
                if *replicas < floor {
                    report.violations.push(Violation {
                        check: "replica-floor",
                        file: *file,
                        seq: ev.seq,
                        detail: format!("{replicas} replica(s) after heal, floor is {floor}"),
                    });
                }
            }
        }
    }
    report
}

/// Records a (size, version) observation for one client session and
/// flags version regressions within the session.
fn observe_session(
    session_len: &mut HashMap<(u32, u64), usize>,
    session_version: &mut HashMap<(u32, u64), (u64, u64)>,
    report: &mut AuditReport,
    ev: &Event,
    file: u64,
    size: usize,
    version: (u64, u64),
) {
    let seen = session_len.entry((ev.client, file)).or_insert(0);
    if size < *seen {
        report.violations.push(Violation {
            check: "non-monotone-attr",
            file,
            seq: ev.seq,
            detail: format!("client {} saw size {} after having seen {}", ev.client, size, *seen),
        });
    }
    *seen = (*seen).max(size);
    let ver = session_version.entry((ev.client, file)).or_insert((0, 0));
    if version < *ver {
        report.violations.push(Violation {
            check: "version-regression",
            file,
            seq: ev.seq,
            detail: format!(
                "client {} saw version {version:?} after having seen {:?}",
                ev.client, *ver
            ),
        });
    }
    *ver = (*ver).max(version);
}

fn bump_observed(slot: &mut Option<(u64, u64)>, version: (u64, u64)) {
    match slot {
        Some(max) => *max = (*max).max(version),
        None => *slot = Some(version),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONTRACT: Contract = Contract { write_safety: 2, min_replicas: 2, servers: 3 };

    struct Builder {
        seq: u64,
        events: Vec<Event>,
    }

    impl Builder {
        fn new() -> Self {
            Builder { seq: 0, events: Vec::new() }
        }

        fn next(&mut self) -> u64 {
            self.seq += 1;
            self.seq
        }

        fn push(&mut self, client: u32, body: EventBody) -> u64 {
            let seq = self.next();
            self.events.push(Event { seq, client, body });
            seq
        }

        /// A write invoked and immediately acked at `version`.
        fn write(
            &mut self,
            client: u32,
            file: u64,
            offset: usize,
            data: &[u8],
            version: (u64, u64),
        ) {
            let op = self.next();
            self.events.push(Event {
                seq: op,
                client,
                body: EventBody::Invoke {
                    op,
                    call: OpCall::Write { file, offset, data: data.to_vec() },
                },
            });
            self.push(
                client,
                EventBody::Ack {
                    op,
                    outcome: OpOutcome::Attr { file, size: offset + data.len(), version },
                },
            );
        }

        /// A read invoked and acked with the given observation.
        fn read(&mut self, client: u32, file: u64, bytes: &[u8]) {
            let op = self.next();
            self.events.push(Event {
                seq: op,
                client,
                body: EventBody::Invoke { op, call: OpCall::Read { file, offset: 0 } },
            });
            self.push(
                client,
                EventBody::Ack {
                    op,
                    outcome: OpOutcome::Data { len: bytes.len(), hash: fnv1a(bytes) },
                },
            );
        }

        fn history(self) -> History {
            History::from_events(self.events)
        }
    }

    #[test]
    fn clean_append_history_is_green() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.read(2, 7, b"aaaa");
        b.write(1, 7, 4, b"bb", (1, 2));
        b.read(2, 7, b"aaaabb");
        b.read(2, 7, b"aaaabb");
        b.push(
            u32::MAX,
            EventBody::FinalState {
                file: 7,
                len: 6,
                hash: fnv1a(b"aaaabb"),
                version: (1, 2),
                replicas: 2,
            },
        );
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.is_green(), "{}", report.render());
        assert_eq!(report.reads_checked, 3);
        assert_eq!(report.writes_acked, 2);
    }

    #[test]
    fn torn_read_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.read(2, 7, b"aaXa");
        let report = audit(&b.history(), &CONTRACT);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].check, "torn-read");
    }

    #[test]
    fn mid_chunk_read_length_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.read(2, 7, b"aa");
        let report = audit(&b.history(), &CONTRACT);
        assert_eq!(report.violations[0].check, "torn-read");
    }

    #[test]
    fn non_monotone_read_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.write(1, 7, 4, b"bb", (1, 2));
        b.read(2, 7, b"aaaabb");
        b.read(2, 7, b"aaaa");
        let report = audit(&b.history(), &CONTRACT);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].check, "non-monotone-read");
    }

    #[test]
    fn future_read_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        // Hand-build a read that returns bytes never written: a state
        // recorded by a later write, observed before its invoke.
        let op = b.next();
        b.events.push(Event {
            seq: op,
            client: 2,
            body: EventBody::Invoke { op, call: OpCall::Read { file: 7, offset: 0 } },
        });
        b.push(
            2,
            EventBody::Ack { op, outcome: OpOutcome::Data { len: 6, hash: fnv1a(b"aaaabb") } },
        );
        b.write(1, 7, 4, b"bb", (1, 2));
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.violations.iter().any(|v| v.check == "future-read"), "{}", report.render());
    }

    #[test]
    fn acked_write_loss_is_flagged_within_crash_budget() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.write(1, 7, 4, b"bb", (1, 2));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Crash { server: 0 }));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Restart { server: 0 }));
        b.push(
            u32::MAX,
            EventBody::FinalState {
                file: 7,
                len: 4,
                hash: fnv1a(b"aaaa"),
                version: (1, 1),
                replicas: 2,
            },
        );
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.durability_checked);
        assert!(report.violations.iter().any(|v| v.check == "acked-write-loss"));
        assert!(report.violations.iter().any(|v| v.check == "stabilized-version-regression"));
    }

    #[test]
    fn crash_budget_exceeded_skips_durability_checks() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Crash { server: 0 }));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Crash { server: 1 }));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Restart { server: 0 }));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Restart { server: 1 }));
        b.push(
            u32::MAX,
            EventBody::FinalState {
                file: 7,
                len: 0,
                hash: fnv1a(b""),
                version: (1, 0),
                replicas: 2,
            },
        );
        let report = audit(&b.history(), &CONTRACT);
        assert!(!report.durability_checked);
        assert!(report.is_green(), "{}", report.render());
    }

    #[test]
    fn write_version_regression_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 2));
        b.write(1, 7, 4, b"bb", (1, 1));
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.violations.iter().any(|v| v.check == "write-version-regression"));
    }

    #[test]
    fn replica_floor_violation_is_flagged() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        b.push(
            u32::MAX,
            EventBody::FinalState {
                file: 7,
                len: 4,
                hash: fnv1a(b"aaaa"),
                version: (1, 1),
                replicas: 1,
            },
        );
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.violations.iter().any(|v| v.check == "replica-floor"));
    }

    #[test]
    fn retried_identical_write_is_idempotent() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aaaa", (1, 1));
        // Ambiguous first attempt: invoked, transport lost.
        let op = b.next();
        b.events.push(Event {
            seq: op,
            client: 1,
            body: EventBody::Invoke {
                op,
                call: OpCall::Write { file: 7, offset: 4, data: b"bb".to_vec() },
            },
        });
        b.push(1, EventBody::Ack { op, outcome: OpOutcome::Lost });
        // Retry of the same chunk succeeds.
        b.write(1, 7, 4, b"bb", (1, 2));
        b.read(2, 7, b"aaaabb");
        let report = audit(&b.history(), &CONTRACT);
        assert!(report.is_green(), "{}", report.render());
    }

    #[test]
    fn history_json_shape() {
        let mut b = Builder::new();
        b.write(1, 7, 0, b"aa\"a", (1, 1));
        b.push(u32::MAX, EventBody::Fault(FaultEvent::Split { groups: vec![vec![0, 1], vec![2]] }));
        let json = b.history().to_json();
        for needle in ["\"events\"", "\"invoke\"", "\"ack\"", "\"split\":[[0,1],[2]]", "\\\""] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
