//! The Deceit segment server — the paper's primary contribution.
//!
//! §5: "The first component is a distributed reliable segment server. The
//! segment server provides a simple, flat, reliable distributed file
//! service with no user level security or user specified names. … The
//! segment server implements all of the update, replication, and versioning
//! protocols, and it is the layer where file parameters exist."
//!
//! This crate implements that layer in full:
//!
//! * [`version`] — version pairs, branch records, and the history tree
//!   (§3.5 "Histories and Version Pairs").
//! * [`params`] — the five per-file semantic parameters (§4).
//! * [`ops`] — segment operations: create, delete, read, write, setparam
//!   (§5.1), with conditional writes for optimistic concurrency.
//! * [`token`] — write tokens (§3.3) and token generation policy (§3.5).
//! * [`replica`] — replica state and metadata.
//! * [`server`] — one Deceit server's local state (non-volatile storage per
//!   §3.5, delivery queues, failure detector).
//! * [`cluster`] — the deployment: simulated network + servers + the event
//!   engine that drives asynchronous propagation, write-back, stability
//!   timeouts, and background replica generation.
//! * [`proto`] — the protocols themselves: update distribution (§3.2),
//!   token acquisition and generation (§3.3, §3.5), stability notification
//!   (§3.4), replica generation and migration (§3.1), crash recovery and
//!   partition reconciliation (§3.6), and the special user commands (§2.1).
//!
//! # Examples
//!
//! ```
//! use deceit_core::{Cluster, ClusterConfig, FileParams, WriteOp};
//! use deceit_net::NodeId;
//!
//! // Three servers, one cell.
//! let mut cluster = Cluster::new(3, ClusterConfig::default());
//! let s0 = NodeId(0);
//!
//! // Create a segment via server 0 and replicate it on two servers.
//! let seg = cluster.create(s0).unwrap().value;
//! cluster
//!     .set_params(s0, seg, FileParams { min_replicas: 2, ..FileParams::default() })
//!     .unwrap();
//! cluster.write(s0, seg, WriteOp::replace(b"hello"), None).unwrap();
//! cluster.run_until_quiet();
//!
//! let read = cluster.read(s0, seg, None, 0, 100).unwrap();
//! assert_eq!(&read.value.data[..], b"hello");
//! assert_eq!(cluster.locate_replicas(s0, seg).unwrap().value.len(), 2);
//! ```

pub mod audit;
pub mod cluster;
pub mod config;
pub mod error;
pub mod event;
pub mod host;
pub mod hot;
pub mod obs;
pub mod ops;
pub mod params;
pub mod placement;
pub mod proto;
pub mod replica;
pub mod server;
pub mod token;
pub mod trace_events;
pub mod version;

pub use audit::{
    audit, fnv1a, AuditReport, Contract, Event, EventBody, FaultEvent, History, OpCall, OpOutcome,
    Violation,
};
pub use cluster::{Cluster, OpResult};
pub use config::ClusterConfig;
pub use error::{DeceitError, DeceitResult};
pub use host::{shard_slot, OpClass, ProtocolHost, ShardKey};
pub use obs::{AtomicHistogram, FlightRecorder, HistCounts, HistSummary, ObsCore};
pub use ops::{ReadData, WriteOp};
pub use params::{FileParams, WriteAvailability};
pub use placement::{PlacementCore, PlacementSnapshot};
pub use proto::commands::VersionInfo;
pub use replica::{Replica, ReplicaState};
pub use server::{ReadLease, SegmentId};
pub use token::WriteToken;
pub use trace_events::ProtocolEvent;
pub use version::{BranchTable, VersionPair, VersionRelation};
