//! Deferred actions driven by the cluster's event queue.

use deceit_net::NodeId;

use crate::ops::UpdateRecord;
use crate::server::ReplicaKey;

/// One pending deferred action.
#[derive(Debug, Clone, PartialEq)]
pub enum Pending {
    /// Apply a received update at a replica (write-behind propagation: the
    /// replica acknowledged receipt at broadcast time and applies here).
    ApplyUpdate {
        /// Server applying the update.
        server: NodeId,
        /// Replica (segment, major) the update belongs to.
        key: ReplicaKey,
        /// The update itself.
        update: UpdateRecord,
    },
    /// Flush a server's asynchronously written local state to disk —
    /// the shard slice of the segment that dirtied it.
    FlushServer {
        /// Server to flush.
        server: NodeId,
        /// The segment whose mutation scheduled the flush; attributes
        /// the work to that file's shard, so it drains under the same
        /// locks the mutation held.
        seg: crate::server::SegmentId,
    },
    /// Check whether the write stream on a file has gone quiet and, if so,
    /// mark the group stable (§3.4).
    StabilizeCheck {
        /// Token holder performing the check.
        server: NodeId,
        /// Replica (segment, major) under consideration.
        key: ReplicaKey,
        /// Write-stream epoch at scheduling time; a newer write bumps the
        /// epoch and invalidates this check.
        epoch: u64,
    },
    /// Ship the file's buffered outbound updates to the rest of its file
    /// group in one batched broadcast — the drain half of the
    /// asynchronous write pipeline (`ClusterConfig::opt_write_pipeline`).
    /// Consecutive updates buffered between drains ride one message.
    PropagateStream {
        /// The server whose outbound buffer holds the updates (the token
        /// holder at buffering time; still a valid source if the token
        /// has since moved, because buffered updates are committed).
        holder: NodeId,
        /// Replica (segment, major) the stream belongs to.
        key: ReplicaKey,
    },
    /// Targeted per-file read-repair (`ClusterConfig::opt_read_repair`):
    /// catch one lagging, unstable replica up from the durable primary —
    /// scheduled by a read that had to forward around it, so the next
    /// reads can be served locally instead of forwarding until the next
    /// stabilize round happens to cover the laggard.
    ReadRepair {
        /// The lagging server to catch up (the repair dies with it).
        server: NodeId,
        /// Replica (segment, major) to repair.
        key: ReplicaKey,
    },
    /// Access-driven replica migration (`ClusterConfig::opt_placement`):
    /// create a replica at a server that kept serving forwarded reads
    /// for the file, from a durable stable copy via the §3.1
    /// regeneration path, then retire idle extras elsewhere down to the
    /// `FileParams::min_replicas` floor. Scheduled by the placement
    /// policy when a server's access counter crosses the threshold;
    /// single-flighted per (server, file).
    MigrateReplica {
        /// Destination server — the reader the replica moves toward
        /// (the migration dies with it).
        server: NodeId,
        /// Replica (segment, major) to migrate.
        key: ReplicaKey,
    },
    /// Background replica generation via blast transfer (§3.1).
    GenerateReplica {
        /// Token holder driving the generation.
        holder: NodeId,
        /// Replica (segment, major) to copy.
        key: ReplicaKey,
        /// Destination server.
        target: NodeId,
    },
}

impl Pending {
    /// The server whose crash would cancel this action.
    pub fn owner(&self) -> NodeId {
        match self {
            Pending::ApplyUpdate { server, .. }
            | Pending::FlushServer { server, .. }
            | Pending::StabilizeCheck { server, .. }
            | Pending::ReadRepair { server, .. }
            | Pending::MigrateReplica { server, .. } => *server,
            Pending::PropagateStream { holder, .. } | Pending::GenerateReplica { holder, .. } => {
                *holder
            }
        }
    }

    /// Whether the live pump must wait for this action's due time.
    /// Ordinary deferred work (write-back, replica generation, eager
    /// lazy applies) is valid at any later point, so a live pump may
    /// fire it the moment it has capacity. Two kinds wait:
    ///
    /// * a stability check asserts a *time condition* — "a short period
    ///   of no write activity" (§3.4) — and fired early it would declare
    ///   a busy stream quiet, thrashing stable/unstable round pairs;
    /// * a pipeline drain's due time *is the batching window* — fired
    ///   the instant it is queued, every batch degenerates to one
    ///   update and the pipeline ships one broadcast per write again;
    /// * a read-repair's due time is its damping window: fired the
    ///   instant a forwarded read queues it, a still-active stream makes
    ///   it a no-op and the next read re-queues it — a schedule/fire spin
    ///   in place of the single deferred catch-up it is meant to be;
    /// * a replica migration's due time is likewise its damping window —
    ///   fired eagerly, a burst of forwarded reads would move replicas
    ///   around as fast as the pump can copy them instead of once per
    ///   window.
    ///
    /// The match is exhaustive on purpose: adding a `Pending` variant
    /// must not compile (nor pass `deceit-lint`'s due-gating rule)
    /// until its gating is decided here explicitly.
    pub fn due_gated(&self) -> bool {
        match self {
            Pending::StabilizeCheck { .. }
            | Pending::PropagateStream { .. }
            | Pending::ReadRepair { .. }
            | Pending::MigrateReplica { .. } => true,
            Pending::ApplyUpdate { .. }
            | Pending::FlushServer { .. }
            | Pending::GenerateReplica { .. } => false,
        }
    }

    /// The shard key this action belongs to, for per-shard pumping and
    /// queue routing: the segment it operates on. Every deferred action
    /// is per-file (flushes carry the segment that dirtied them), so a
    /// host holding one file's shard locks can fire exactly the deferred
    /// work those locks cover.
    pub fn shard_hint(&self) -> u64 {
        match self {
            Pending::ApplyUpdate { key, .. }
            | Pending::StabilizeCheck { key, .. }
            | Pending::PropagateStream { key, .. }
            | Pending::ReadRepair { key, .. }
            | Pending::MigrateReplica { key, .. }
            | Pending::GenerateReplica { key, .. } => key.0 .0,
            Pending::FlushServer { seg, .. } => seg.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WriteOp;
    use crate::server::SegmentId;
    use crate::version::VersionPair;

    #[test]
    fn owner_identifies_cancellation_target() {
        let key = (SegmentId(1), 0u64);
        let apply = Pending::ApplyUpdate {
            server: NodeId(3),
            key,
            update: UpdateRecord {
                new_version: VersionPair { major: 0, sub: 1 },
                op: WriteOp::Truncate(0),
            },
        };
        assert_eq!(apply.owner(), NodeId(3));
        let flush = Pending::FlushServer { server: NodeId(1), seg: SegmentId(4) };
        assert_eq!(flush.owner(), NodeId(1));
        assert_eq!(flush.shard_hint(), 4, "flushes shard by the segment that dirtied them");
        assert_eq!(
            Pending::GenerateReplica { holder: NodeId(2), key, target: NodeId(4) }.owner(),
            NodeId(2)
        );
        let migrate = Pending::MigrateReplica { server: NodeId(2), key };
        assert_eq!(migrate.owner(), NodeId(2), "a migration dies with its destination");
        assert!(migrate.due_gated(), "migrations wait out their damping window");
        assert_eq!(migrate.shard_hint(), 1);
    }
}
