//! The transport-agnostic hosting seam.
//!
//! The simulator drives the §3 protocols from a single thread: client
//! operations execute synchronously against [`Cluster`], and deferred work
//! fires from the event queue as the simulated clock advances. A *live*
//! deployment has neither luxury — requests arrive concurrently from real
//! threads, and nothing blocks on simulated time.
//!
//! [`ProtocolHost`] is the seam between those two worlds. It captures
//! exactly what a hosting environment needs from a protocol engine,
//! independent of transport:
//!
//! * advancing deferred protocol work in bounded slices ([`pump`]) or to
//!   quiescence ([`settle`]),
//! * failure injection (crash, restart, partition, heal) mirroring the
//!   simulator's API so the same scenarios run in both worlds,
//! * liveness and clock introspection.
//!
//! [`Cluster`] implements it directly; the NFS envelope layers forward
//! their implementations to the cluster underneath, and the
//! `deceit_runtime` crate hosts any implementor on real threads over the
//! live bus.
//!
//! [`pump`]: ProtocolHost::pump
//! [`settle`]: ProtocolHost::settle

use deceit_net::NodeId;
use deceit_sim::SimTime;

use crate::cluster::Cluster;

/// A protocol engine that can be hosted outside the simulator.
pub trait ProtocolHost {
    /// Fires up to `max_events` units of deferred protocol work
    /// (asynchronous propagation, write-back, stability timeouts,
    /// background replica generation), returning how many fired.
    fn pump(&mut self, max_events: usize) -> usize;

    /// Drives deferred work to quiescence.
    fn settle(&mut self);

    /// Units of deferred work currently pending.
    fn pending_work(&self) -> usize;

    /// Crashes a node without notification: volatile state is lost and its
    /// traffic is rejected until [`ProtocolHost::restart_node`].
    fn crash_node(&mut self, node: NodeId);

    /// Restarts a crashed node and runs its recovery protocol.
    fn restart_node(&mut self, node: NodeId);

    /// Imposes a network partition between the given groups of nodes.
    fn split_nodes(&mut self, groups: &[&[NodeId]]);

    /// Heals any partition (reconciling divergent state where the
    /// protocol calls for it).
    fn heal_nodes(&mut self);

    /// Whether `node` is currently up.
    fn node_is_up(&self, node: NodeId) -> bool;

    /// The engine's protocol clock.
    ///
    /// Live hosting keeps the simulated clock as *protocol time*: it
    /// orders deferred work and ages caches, while wall-clock time governs
    /// nothing but thread scheduling.
    fn protocol_now(&self) -> SimTime;
}

impl ProtocolHost for Cluster {
    fn pump(&mut self, max_events: usize) -> usize {
        Cluster::pump(self, max_events)
    }

    fn settle(&mut self) {
        self.run_until_quiet();
    }

    fn pending_work(&self) -> usize {
        self.pending_events()
    }

    fn crash_node(&mut self, node: NodeId) {
        self.crash_server(node);
    }

    fn restart_node(&mut self, node: NodeId) {
        self.recover_server(node);
    }

    fn split_nodes(&mut self, groups: &[&[NodeId]]) {
        self.split(groups);
    }

    fn heal_nodes(&mut self) {
        self.heal();
    }

    fn node_is_up(&self, node: NodeId) -> bool {
        self.check_up(node).is_ok()
    }

    fn protocol_now(&self) -> SimTime {
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::ops::WriteOp;
    use crate::params::FileParams;

    #[test]
    fn cluster_pumps_deferred_work_in_slices() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.write(NodeId(0), seg, WriteOp::replace(b"pump me"), None).unwrap();
        assert!(ProtocolHost::pending_work(&c) > 0, "replication work should be deferred");
        let mut total = 0;
        loop {
            let fired = ProtocolHost::pump(&mut c, 2);
            if fired == 0 {
                break;
            }
            assert!(fired <= 2, "pump must respect its budget");
            total += fired;
        }
        assert!(total > 0);
        assert_eq!(c.locate_replicas(NodeId(0), seg).unwrap().value.len(), 3);
    }

    #[test]
    fn host_failure_injection_mirrors_cluster_api() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let host: &mut dyn ProtocolHost = &mut c;
        assert!(host.node_is_up(NodeId(1)));
        host.crash_node(NodeId(1));
        assert!(!host.node_is_up(NodeId(1)));
        host.restart_node(NodeId(1));
        host.settle();
        assert!(host.node_is_up(NodeId(1)));
        host.split_nodes(&[&[NodeId(0)], &[NodeId(1), NodeId(2)]]);
        host.heal_nodes();
        assert_eq!(host.pending_work(), 0);
        assert!(host.protocol_now() >= SimTime::ZERO);
    }
}
