//! The transport-agnostic hosting seam.
//!
//! The simulator drives the §3 protocols from a single thread: client
//! operations execute synchronously against [`Cluster`], and deferred work
//! fires from the event queue as the simulated clock advances. A *live*
//! deployment has neither luxury — requests arrive concurrently from real
//! threads, and nothing blocks on simulated time.
//!
//! [`ProtocolHost`] is the seam between those two worlds. It captures
//! exactly what a hosting environment needs from a protocol engine,
//! independent of transport:
//!
//! * advancing deferred protocol work in bounded slices ([`pump`]) or to
//!   quiescence ([`settle`]) — globally with exclusive access, or one
//!   shard at a time with shared access ([`try_pump_shard`]),
//! * failure injection (crash, restart, partition, heal) mirroring the
//!   simulator's API so the same scenarios run in both worlds,
//! * liveness and clock introspection.
//!
//! [`Cluster`] implements it directly; the NFS envelope layers forward
//! their implementations to the cluster underneath, and the
//! `deceit_runtime` crate hosts any implementor on real threads over the
//! live bus.
//!
//! [`pump`]: ProtocolHost::pump
//! [`settle`]: ProtocolHost::settle
//! [`try_pump_shard`]: ProtocolHost::try_pump_shard

use deceit_net::NodeId;
use deceit_sim::SimTime;

use crate::cluster::Cluster;

/// The sharding key of an operation: the per-file identity (segment id)
/// whose hot state the operation touches. Hosts map keys onto a fixed
/// number of shard slots with [`shard_slot`].
pub type ShardKey = u64;

/// Maps a [`ShardKey`] onto one of `shards` shard slots.
///
/// Segment ids are allocated sequentially, so a plain modulus already
/// spreads a cell's files evenly across slots.
pub fn shard_slot(key: ShardKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "a host needs at least one shard");
    (key % shards.max(1) as u64) as usize
}

/// How an operation interacts with engine state — the classification
/// seam a concurrent host dispatches on.
///
/// The engine's state divides into *cold cell-wide* state (membership,
/// groups, stats, trace, the clock and event queues) and *hot per-file*
/// state (replicas, tokens, streams, directory segments). A hosting
/// environment keeps the cell state under a read-mostly lock and the
/// per-file state under shard locks; every operation declares up front
/// which slice it touches so the host can take exactly the locks the
/// class requires (lock order: cell lock first, then shard locks in
/// ascending slot order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Reads per-file or cell state without mutating either: may execute
    /// under the shared cell lock, concurrently with other read-only
    /// operations.
    ReadOnly,
    /// Mutates the hot state of a single file (and, behind it, cell-wide
    /// bookkeeping such as the clock and deferred-work queue).
    Mutate(ShardKey),
    /// Mutates the hot state of two files at once (rename across
    /// directories, hard links): the host takes both shard locks in
    /// ascending slot order.
    CrossShard(ShardKey, ShardKey),
    /// Touches cell-wide state or an unbounded set of files (failure
    /// injection, reconciliation, settling): requires the exclusive cell
    /// lock with no specific shard.
    CellWide,
}

impl OpClass {
    /// The shard slots this class touches, deduplicated and in ascending
    /// order — the exact sequence a host must lock.
    pub fn slots(&self, shards: usize) -> impl Iterator<Item = usize> {
        let (a, b) = match *self {
            OpClass::ReadOnly | OpClass::CellWide => (None, None),
            OpClass::Mutate(k) => (Some(shard_slot(k, shards)), None),
            OpClass::CrossShard(x, y) => {
                let (x, y) = (shard_slot(x, shards), shard_slot(y, shards));
                let (lo, hi) = (x.min(y), x.max(y));
                (Some(lo), (hi != lo).then_some(hi))
            }
        };
        a.into_iter().chain(b)
    }

    /// Writes the slot sequence into a fixed buffer (a class never
    /// declares more than two slots), returning how many were written —
    /// the allocation-free form hosts use on the request hot path.
    pub fn slots_into(&self, shards: usize, buf: &mut [usize; 2]) -> usize {
        let mut n = 0;
        for s in self.slots(shards) {
            buf[n] = s;
            n += 1;
        }
        n
    }
}

/// A protocol engine that can be hosted outside the simulator.
pub trait ProtocolHost {
    /// Fires up to `max_events` units of deferred protocol work
    /// (asynchronous propagation, write-back, stability timeouts,
    /// background replica generation), returning how many fired.
    fn pump(&mut self, max_events: usize) -> usize;

    /// The number of shard slots the engine partitions its deferred work
    /// (and hot state) into. Hosts size their ring locks to match, so
    /// holding slot `s`'s ring lock covers exactly the engine's slot-`s`
    /// state. At most 64 (the pending-work scan is a `u64` mask).
    fn shard_count(&self) -> usize {
        1
    }

    /// Fires up to `max_events` units of deferred work belonging to one
    /// shard slot with *shared* engine access, returning how many fired
    /// — or `None` if this engine cannot pump a shard without exclusive
    /// access (the host then falls back to an exclusive [`pump`]).
    ///
    /// The caller must hold the ring lock of `slot`: relative order
    /// *within* a slot is preserved, and the ring lock is what keeps a
    /// concurrent mutation of the same files out while the slot drains.
    ///
    /// [`pump`]: ProtocolHost::pump
    fn try_pump_shard(&self, slot: usize, max_events: usize) -> Option<usize> {
        let _ = (slot, max_events);
        None
    }

    /// Bitmask of shard slots that currently have deferred work —
    /// allocation-free, so an idle host can poll it without garbage.
    /// Engines that cannot attribute work to shards report slot 0
    /// whenever anything is pending.
    fn pending_shard_mask(&self) -> u64 {
        if self.pending_work() > 0 {
            1
        } else {
            0
        }
    }

    /// Advances the protocol clock by `d` without running any work —
    /// the live pump's idle tick. On a quiet cell nothing else moves
    /// the clock, yet the remaining deferred horizons (a stability
    /// check's "period of no write activity", a pipeline drain's
    /// batching window) are protocol-clock durations; mapping idle wall
    /// time onto the clock lets them elapse instead of waiting for
    /// traffic that may never come. Default: no-op.
    fn advance_idle_clock(&self, d: deceit_sim::SimDuration) {
        let _ = d;
    }

    /// Drives deferred work to quiescence.
    fn settle(&mut self);

    /// Units of deferred work currently pending.
    fn pending_work(&self) -> usize;

    /// Crashes a node without notification: volatile state is lost and its
    /// traffic is rejected until [`ProtocolHost::restart_node`].
    fn crash_node(&mut self, node: NodeId);

    /// Restarts a crashed node and runs its recovery protocol.
    fn restart_node(&mut self, node: NodeId);

    /// Imposes a network partition between the given groups of nodes.
    fn split_nodes(&mut self, groups: &[&[NodeId]]);

    /// Heals any partition (reconciling divergent state where the
    /// protocol calls for it).
    fn heal_nodes(&mut self);

    /// Whether `node` is currently up.
    fn node_is_up(&self, node: NodeId) -> bool;

    /// The engine's protocol clock.
    ///
    /// Live hosting keeps the simulated clock as *protocol time*: it
    /// orders deferred work and ages caches, while wall-clock time governs
    /// nothing but thread scheduling.
    fn protocol_now(&self) -> SimTime;

    /// The engine's always-on observability bundle (flight recorder,
    /// core-side histograms), if it keeps one. Hosts use it to stamp
    /// serve-path phases and to dump the flight recorder on failure;
    /// `None` means the engine carries no observability state.
    fn obs_core(&self) -> Option<&crate::obs::ObsCore> {
        None
    }

    /// A point-in-time copy of the engine's protocol stats registry, if
    /// it keeps one. A disabled registry still answers — its snapshot
    /// carries `disabled: true` so exporters cannot mistake "switched
    /// off" for "nothing happened". `None` means the engine has no
    /// registry at all.
    fn stats_snapshot(&self) -> Option<deceit_sim::StatsSnapshot> {
        None
    }
}

impl ProtocolHost for Cluster {
    fn pump(&mut self, max_events: usize) -> usize {
        Cluster::pump(self, max_events)
    }

    fn shard_count(&self) -> usize {
        Cluster::shard_count(self)
    }

    fn try_pump_shard(&self, slot: usize, max_events: usize) -> Option<usize> {
        Some(Cluster::pump_shard(self, slot, max_events))
    }

    fn pending_shard_mask(&self) -> u64 {
        Cluster::pending_shard_mask(self)
    }

    fn advance_idle_clock(&self, d: deceit_sim::SimDuration) {
        self.clock_add(d);
    }

    fn settle(&mut self) {
        self.run_until_quiet();
    }

    fn pending_work(&self) -> usize {
        self.pending_events()
    }

    fn crash_node(&mut self, node: NodeId) {
        self.crash_server(node);
    }

    fn restart_node(&mut self, node: NodeId) {
        self.recover_server(node);
    }

    fn split_nodes(&mut self, groups: &[&[NodeId]]) {
        self.split(groups);
    }

    fn heal_nodes(&mut self) {
        self.heal();
    }

    fn node_is_up(&self, node: NodeId) -> bool {
        self.check_up(node).is_ok()
    }

    fn protocol_now(&self) -> SimTime {
        self.now()
    }

    fn obs_core(&self) -> Option<&crate::obs::ObsCore> {
        Some(&self.obs)
    }

    fn stats_snapshot(&self) -> Option<deceit_sim::StatsSnapshot> {
        Some(self.stats.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::ops::WriteOp;
    use crate::params::FileParams;

    #[test]
    fn cluster_pumps_deferred_work_in_slices() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.write(NodeId(0), seg, WriteOp::replace(b"pump me"), None).unwrap();
        assert!(ProtocolHost::pending_work(&c) > 0, "replication work should be deferred");
        let mut total = 0;
        loop {
            let fired = ProtocolHost::pump(&mut c, 2);
            if fired == 0 {
                break;
            }
            assert!(fired <= 2, "pump must respect its budget");
            total += fired;
        }
        assert!(total > 0);
        assert_eq!(c.locate_replicas(NodeId(0), seg).unwrap().value.len(), 3);
    }

    #[test]
    fn op_class_slots_are_ascending_and_deduplicated() {
        assert_eq!(OpClass::ReadOnly.slots(8).collect::<Vec<_>>(), Vec::<usize>::new());
        assert_eq!(OpClass::CellWide.slots(8).collect::<Vec<_>>(), Vec::<usize>::new());
        assert_eq!(OpClass::Mutate(11).slots(8).collect::<Vec<_>>(), vec![3]);
        assert_eq!(OpClass::CrossShard(13, 2).slots(8).collect::<Vec<_>>(), vec![2, 5]);
        // Two keys on the same slot collapse to one lock acquisition.
        assert_eq!(OpClass::CrossShard(9, 1).slots(8).collect::<Vec<_>>(), vec![1]);
    }

    /// No constructible class may ever yield duplicate or descending
    /// slots: a host locks the sequence in order, and a duplicate would
    /// self-deadlock. This pins the dedup so a future `slots()` refactor
    /// cannot silently reintroduce it.
    #[test]
    fn op_class_slots_never_duplicate_for_any_key_pair() {
        for shards in [1usize, 2, 3, 8, 64] {
            for a in 0..130u64 {
                for b in 0..130u64 {
                    let slots: Vec<usize> = OpClass::CrossShard(a, b).slots(shards).collect();
                    assert!(
                        slots.windows(2).all(|w| w[0] < w[1]),
                        "CrossShard({a},{b}) with {shards} shards yielded {slots:?}"
                    );
                    assert!(!slots.is_empty() && slots.len() <= 2);
                }
            }
        }
    }

    #[test]
    fn cluster_pump_shard_only_fires_matching_work() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.write(NodeId(0), seg, WriteOp::replace(b"shard me"), None).unwrap();
        assert!(c.pending_events() > 0);
        let shards = c.shard_count();
        let own = c.slot_of(seg);
        // Only the segment's own slot reports (and fires) work.
        assert_eq!(c.pending_shard_mask(), 1 << own);
        let mut fired = 0;
        loop {
            let pass: usize =
                (0..shards).map(|s| ProtocolHost::try_pump_shard(&c, s, 16).unwrap()).sum();
            if pass == 0 {
                break;
            }
            fired += pass;
        }
        assert!(fired > 0);
        // Everything but time-gated stability checks drains through the
        // per-shard pump; the gated remainder fires once the clock truly
        // reaches it (settling covers that).
        assert_eq!(c.events.gated_len(), c.pending_events());
        assert_eq!(c.locate_replicas(NodeId(0), seg).unwrap().value.len(), 3);
        c.run_until_quiet();
        assert_eq!(c.pending_events(), 0);
    }

    #[test]
    fn host_failure_injection_mirrors_cluster_api() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let host: &mut dyn ProtocolHost = &mut c;
        assert!(host.node_is_up(NodeId(1)));
        host.crash_node(NodeId(1));
        assert!(!host.node_is_up(NodeId(1)));
        host.restart_node(NodeId(1));
        host.settle();
        assert!(host.node_is_up(NodeId(1)));
        host.split_nodes(&[&[NodeId(0)], &[NodeId(1), NodeId(2)]]);
        host.heal_nodes();
        assert_eq!(host.pending_work(), 0);
        assert!(host.protocol_now() >= SimTime::ZERO);
    }
}
