//! The transport-agnostic hosting seam.
//!
//! The simulator drives the §3 protocols from a single thread: client
//! operations execute synchronously against [`Cluster`], and deferred work
//! fires from the event queue as the simulated clock advances. A *live*
//! deployment has neither luxury — requests arrive concurrently from real
//! threads, and nothing blocks on simulated time.
//!
//! [`ProtocolHost`] is the seam between those two worlds. It captures
//! exactly what a hosting environment needs from a protocol engine,
//! independent of transport:
//!
//! * advancing deferred protocol work in bounded slices ([`pump`]) or to
//!   quiescence ([`settle`]),
//! * failure injection (crash, restart, partition, heal) mirroring the
//!   simulator's API so the same scenarios run in both worlds,
//! * liveness and clock introspection.
//!
//! [`Cluster`] implements it directly; the NFS envelope layers forward
//! their implementations to the cluster underneath, and the
//! `deceit_runtime` crate hosts any implementor on real threads over the
//! live bus.
//!
//! [`pump`]: ProtocolHost::pump
//! [`settle`]: ProtocolHost::settle

use deceit_net::NodeId;
use deceit_sim::SimTime;

use crate::cluster::Cluster;

/// The sharding key of an operation: the per-file identity (segment id)
/// whose hot state the operation touches. Hosts map keys onto a fixed
/// number of shard slots with [`shard_slot`].
pub type ShardKey = u64;

/// Maps a [`ShardKey`] onto one of `shards` shard slots.
///
/// Segment ids are allocated sequentially, so a plain modulus already
/// spreads a cell's files evenly across slots.
pub fn shard_slot(key: ShardKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "a host needs at least one shard");
    (key % shards.max(1) as u64) as usize
}

/// How an operation interacts with engine state — the classification
/// seam a concurrent host dispatches on.
///
/// The engine's state divides into *cold cell-wide* state (membership,
/// groups, stats, trace, the clock and event queue) and *hot per-file*
/// state (replicas, tokens, streams, directory segments). A hosting
/// environment keeps the cell state under a read-mostly lock and the
/// per-file state under shard locks; every operation declares up front
/// which slice it touches so the host can take exactly the locks the
/// class requires (lock order: cell lock first, then shard locks in
/// ascending slot order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Reads per-file or cell state without mutating either: may execute
    /// under the shared cell lock, concurrently with other read-only
    /// operations.
    ReadOnly,
    /// Mutates the hot state of a single file (and, behind it, cell-wide
    /// bookkeeping such as the clock and deferred-work queue).
    Mutate(ShardKey),
    /// Mutates the hot state of two files at once (rename across
    /// directories, hard links): the host takes both shard locks in
    /// ascending slot order.
    CrossShard(ShardKey, ShardKey),
    /// Touches cell-wide state or an unbounded set of files (failure
    /// injection, reconciliation, settling): requires the exclusive cell
    /// lock with no specific shard.
    CellWide,
}

impl OpClass {
    /// The shard slots this class touches, deduplicated and in ascending
    /// order — the exact sequence a host must lock.
    pub fn slots(&self, shards: usize) -> impl Iterator<Item = usize> {
        let (a, b) = match *self {
            OpClass::ReadOnly | OpClass::CellWide => (None, None),
            OpClass::Mutate(k) => (Some(shard_slot(k, shards)), None),
            OpClass::CrossShard(x, y) => {
                let (x, y) = (shard_slot(x, shards), shard_slot(y, shards));
                let (lo, hi) = (x.min(y), x.max(y));
                (Some(lo), (hi != lo).then_some(hi))
            }
        };
        a.into_iter().chain(b)
    }
}

/// A protocol engine that can be hosted outside the simulator.
pub trait ProtocolHost {
    /// Fires up to `max_events` units of deferred protocol work
    /// (asynchronous propagation, write-back, stability timeouts,
    /// background replica generation), returning how many fired.
    fn pump(&mut self, max_events: usize) -> usize;

    /// Fires up to `max_events` units of deferred work belonging to one
    /// shard slot (out of `shards`), returning how many fired.
    ///
    /// A sharded host sweeps the slots round-robin so a file with a deep
    /// backlog cannot monopolize the pump. Relative order *within* a
    /// slot is preserved; engines that cannot attribute work to shards
    /// drain everything through slot 0.
    fn pump_shard(&mut self, slot: usize, shards: usize, max_events: usize) -> usize {
        if slot == 0 {
            self.pump(max_events)
        } else {
            let _ = shards;
            0
        }
    }

    /// The shard slots (out of `shards`) that currently have deferred
    /// work, ascending and deduplicated, so a host pumps only the slots
    /// worth visiting. Engines that cannot attribute work to shards
    /// report slot 0 whenever anything is pending, matching the default
    /// [`ProtocolHost::pump_shard`].
    fn pending_slots(&self, shards: usize) -> Vec<usize> {
        let _ = shards;
        if self.pending_work() > 0 {
            vec![0]
        } else {
            Vec::new()
        }
    }

    /// Drives deferred work to quiescence.
    fn settle(&mut self);

    /// Units of deferred work currently pending.
    fn pending_work(&self) -> usize;

    /// Crashes a node without notification: volatile state is lost and its
    /// traffic is rejected until [`ProtocolHost::restart_node`].
    fn crash_node(&mut self, node: NodeId);

    /// Restarts a crashed node and runs its recovery protocol.
    fn restart_node(&mut self, node: NodeId);

    /// Imposes a network partition between the given groups of nodes.
    fn split_nodes(&mut self, groups: &[&[NodeId]]);

    /// Heals any partition (reconciling divergent state where the
    /// protocol calls for it).
    fn heal_nodes(&mut self);

    /// Whether `node` is currently up.
    fn node_is_up(&self, node: NodeId) -> bool;

    /// The engine's protocol clock.
    ///
    /// Live hosting keeps the simulated clock as *protocol time*: it
    /// orders deferred work and ages caches, while wall-clock time governs
    /// nothing but thread scheduling.
    fn protocol_now(&self) -> SimTime;
}

impl ProtocolHost for Cluster {
    fn pump(&mut self, max_events: usize) -> usize {
        Cluster::pump(self, max_events)
    }

    fn pump_shard(&mut self, slot: usize, shards: usize, max_events: usize) -> usize {
        Cluster::pump_shard(self, slot, shards, max_events)
    }

    fn pending_slots(&self, shards: usize) -> Vec<usize> {
        Cluster::pending_slots(self, shards)
    }

    fn settle(&mut self) {
        self.run_until_quiet();
    }

    fn pending_work(&self) -> usize {
        self.pending_events()
    }

    fn crash_node(&mut self, node: NodeId) {
        self.crash_server(node);
    }

    fn restart_node(&mut self, node: NodeId) {
        self.recover_server(node);
    }

    fn split_nodes(&mut self, groups: &[&[NodeId]]) {
        self.split(groups);
    }

    fn heal_nodes(&mut self) {
        self.heal();
    }

    fn node_is_up(&self, node: NodeId) -> bool {
        self.check_up(node).is_ok()
    }

    fn protocol_now(&self) -> SimTime {
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::ops::WriteOp;
    use crate::params::FileParams;

    #[test]
    fn cluster_pumps_deferred_work_in_slices() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.write(NodeId(0), seg, WriteOp::replace(b"pump me"), None).unwrap();
        assert!(ProtocolHost::pending_work(&c) > 0, "replication work should be deferred");
        let mut total = 0;
        loop {
            let fired = ProtocolHost::pump(&mut c, 2);
            if fired == 0 {
                break;
            }
            assert!(fired <= 2, "pump must respect its budget");
            total += fired;
        }
        assert!(total > 0);
        assert_eq!(c.locate_replicas(NodeId(0), seg).unwrap().value.len(), 3);
    }

    #[test]
    fn op_class_slots_are_ascending_and_deduplicated() {
        assert_eq!(OpClass::ReadOnly.slots(8).collect::<Vec<_>>(), Vec::<usize>::new());
        assert_eq!(OpClass::CellWide.slots(8).collect::<Vec<_>>(), Vec::<usize>::new());
        assert_eq!(OpClass::Mutate(11).slots(8).collect::<Vec<_>>(), vec![3]);
        assert_eq!(OpClass::CrossShard(13, 2).slots(8).collect::<Vec<_>>(), vec![2, 5]);
        // Two keys on the same slot collapse to one lock acquisition.
        assert_eq!(OpClass::CrossShard(9, 1).slots(8).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn cluster_pump_shard_only_fires_matching_work() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.set_params(NodeId(0), seg, FileParams { min_replicas: 3, ..FileParams::default() })
            .unwrap();
        c.write(NodeId(0), seg, WriteOp::replace(b"shard me"), None).unwrap();
        assert!(c.pending_events() > 0);
        let shards = 4;
        // Sweeping every slot drains exactly what a global pump would.
        let mut fired = 0;
        loop {
            let pass: usize = (0..shards).map(|s| c.pump_shard(s, shards, 16)).sum();
            if pass == 0 {
                break;
            }
            fired += pass;
        }
        assert!(fired > 0);
        assert_eq!(c.pending_events(), 0);
        assert_eq!(c.locate_replicas(NodeId(0), seg).unwrap().value.len(), 3);
    }

    #[test]
    fn host_failure_injection_mirrors_cluster_api() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let host: &mut dyn ProtocolHost = &mut c;
        assert!(host.node_is_up(NodeId(1)));
        host.crash_node(NodeId(1));
        assert!(!host.node_is_up(NodeId(1)));
        host.restart_node(NodeId(1));
        host.settle();
        assert!(host.node_is_up(NodeId(1)));
        host.split_nodes(&[&[NodeId(0)], &[NodeId(1), NodeId(2)]]);
        host.heal_nodes();
        assert_eq!(host.pending_work(), 0);
        assert!(host.protocol_now() >= SimTime::ZERO);
    }
}
