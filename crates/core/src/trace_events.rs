//! Structured protocol events, used to regenerate Table 1.
//!
//! Table 1 of the paper ("Typical Sequence of Events in an Update"):
//!
//! | Precondition                         | Action                  |
//! |--------------------------------------|-------------------------|
//! | token is not held                    | acquire token           |
//! | replicas are not marked as unstable  | mark replicas as unstable |
//! | true                                 | distributed update      |
//! | failure detected                     | count update replies    |
//! | insufficient replicas                | generate new replicas   |
//! | period of no write activity          | mark replicas as stable |
//!
//! Every protocol path emits these events into the cluster's
//! [`deceit_sim::TraceLog`]; the `table1` test and harness assert the
//! sequence.

use deceit_net::NodeId;

use crate::server::SegmentId;

/// One protocol-level event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A server acquired the write token (via request/pass round).
    TokenAcquired {
        /// Segment involved.
        seg: SegmentId,
        /// New holder.
        server: NodeId,
        /// Previous holder it was passed from.
        from: NodeId,
    },
    /// A brand-new token (new major version) was generated (§3.5).
    TokenGenerated {
        /// Segment involved.
        seg: SegmentId,
        /// Generating server.
        server: NodeId,
        /// The new major version number.
        major: u64,
    },
    /// The holder marked the file group unstable (§3.4).
    MarkedUnstable {
        /// Segment involved.
        seg: SegmentId,
        /// How many replicas acknowledged the notification.
        acks: usize,
    },
    /// An update was distributed to the file group (§3.2).
    UpdateDistributed {
        /// Segment involved.
        seg: SegmentId,
        /// The subversion (total-order sequence) of the update.
        sub: u64,
        /// Group members the update was sent to (excluding the holder).
        group_size: usize,
    },
    /// The holder counted correct replies to an update broadcast (§3.1
    /// method 1 trigger).
    RepliesCounted {
        /// Segment involved.
        seg: SegmentId,
        /// Correct replies observed.
        replies: usize,
        /// The minimum replica level in force.
        needed: usize,
    },
    /// A new replica was generated (§3.1, any of the four methods).
    ReplicaGenerated {
        /// Segment involved.
        seg: SegmentId,
        /// Server the replica now lives on.
        on: NodeId,
    },
    /// An extra or obsolete replica was deleted.
    ReplicaDeleted {
        /// Segment involved.
        seg: SegmentId,
        /// Server the replica was removed from.
        on: NodeId,
    },
    /// The holder marked the file group stable after write inactivity.
    MarkedStable {
        /// Segment involved.
        seg: SegmentId,
    },
    /// A read was forwarded to another server (no local replica, or local
    /// replica unstable).
    ReadForwarded {
        /// Segment involved.
        seg: SegmentId,
        /// Server that received the client request.
        from: NodeId,
        /// Server that satisfied it.
        to: NodeId,
    },
    /// Two incomparable versions were detected (§3.6 "The hard case"); the
    /// conflict is logged for the user to resolve.
    ConflictLogged {
        /// Segment involved.
        seg: SegmentId,
        /// The incomparable major version numbers.
        majors: (u64, u64),
    },
    /// A lagging replica was caught up from the durable primary by a
    /// read-scheduled repair (`ClusterConfig::opt_read_repair`).
    ReadRepaired {
        /// Segment involved.
        seg: SegmentId,
        /// The repaired (formerly lagging) server.
        on: NodeId,
    },
    /// An obsolete version/replica was destroyed during recovery (§3.6).
    ObsoleteDestroyed {
        /// Segment involved.
        seg: SegmentId,
        /// Server that destroyed its replica.
        on: NodeId,
        /// The major version destroyed.
        major: u64,
    },
    /// The pump drained an outbound pipeline stream: a buffered batch of
    /// updates was propagated to the file group in one firing
    /// (`ClusterConfig::opt_write_pipeline`).
    StreamDrained {
        /// Segment involved.
        seg: SegmentId,
        /// Updates shipped in this batch.
        updates: usize,
        /// Reachable group members the batch was applied to.
        group_size: usize,
    },
    /// The holder granted itself a read lease on an unstable primary
    /// (`ClusterConfig::opt_read_leases`): lock-free reads may now serve
    /// the acked durable prefix.
    LeaseGranted {
        /// Segment involved.
        seg: SegmentId,
        /// The server holding the lease (the token holder).
        on: NodeId,
    },
    /// A read lease was revoked — the token moved, the round stabilized,
    /// or the replica was destroyed — closing the lock-free window.
    LeaseRevoked {
        /// Segment involved.
        seg: SegmentId,
        /// The server whose lease ended.
        on: NodeId,
    },
    /// A crashed server began §3.6 recovery.
    RecoveryStarted {
        /// The recovering server.
        server: NodeId,
    },
    /// A server completed §3.6 recovery and rejoined the cell.
    RecoveryCompleted {
        /// The recovered server.
        server: NodeId,
    },
}

impl ProtocolEvent {
    /// The segment this event concerns, if it is segment-scoped
    /// (recovery start/completion are server-scoped).
    pub fn segment(&self) -> Option<SegmentId> {
        match self {
            ProtocolEvent::TokenAcquired { seg, .. }
            | ProtocolEvent::TokenGenerated { seg, .. }
            | ProtocolEvent::MarkedUnstable { seg, .. }
            | ProtocolEvent::UpdateDistributed { seg, .. }
            | ProtocolEvent::RepliesCounted { seg, .. }
            | ProtocolEvent::ReplicaGenerated { seg, .. }
            | ProtocolEvent::ReplicaDeleted { seg, .. }
            | ProtocolEvent::MarkedStable { seg }
            | ProtocolEvent::ReadForwarded { seg, .. }
            | ProtocolEvent::ConflictLogged { seg, .. }
            | ProtocolEvent::ReadRepaired { seg, .. }
            | ProtocolEvent::ObsoleteDestroyed { seg, .. }
            | ProtocolEvent::StreamDrained { seg, .. }
            | ProtocolEvent::LeaseGranted { seg, .. }
            | ProtocolEvent::LeaseRevoked { seg, .. } => Some(*seg),
            ProtocolEvent::RecoveryStarted { .. } | ProtocolEvent::RecoveryCompleted { .. } => None,
        }
    }

    /// A short label matching the "Action" column of Table 1, when the
    /// event corresponds to one of its rows.
    pub fn table1_action(&self) -> Option<&'static str> {
        match self {
            ProtocolEvent::TokenAcquired { .. } | ProtocolEvent::TokenGenerated { .. } => {
                Some("acquire token")
            }
            ProtocolEvent::MarkedUnstable { .. } => Some("mark replicas as unstable"),
            ProtocolEvent::UpdateDistributed { .. } => Some("distributed update"),
            ProtocolEvent::RepliesCounted { .. } => Some("count update replies"),
            ProtocolEvent::ReplicaGenerated { .. } => Some("generate new replicas"),
            ProtocolEvent::MarkedStable { .. } => Some("mark replicas as stable"),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_labels() {
        let seg = SegmentId(1);
        let ev = ProtocolEvent::MarkedUnstable { seg, acks: 2 };
        assert_eq!(ev.table1_action(), Some("mark replicas as unstable"));
        assert_eq!(ev.segment(), Some(seg));
        let fwd = ProtocolEvent::ReadForwarded { seg, from: NodeId(0), to: NodeId(1) };
        assert_eq!(fwd.table1_action(), None);
        let rec = ProtocolEvent::RecoveryStarted { server: NodeId(0) };
        assert_eq!(rec.segment(), None, "recovery events are server-scoped");
        assert_eq!(rec.table1_action(), None);
    }
}
