//! Per-server state.
//!
//! §3.5 fixes what must live in non-volatile storage (replica data and
//! metadata, token state, the handle map); everything else — delivery
//! queues, location caches, the failure detector, write-stream state — is
//! volatile and lost on a crash.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use deceit_isis::{FailureDetector, GroupId, OrderedReceiver};
use deceit_net::NodeId;
use deceit_sim::SimTime;
use deceit_storage::{Disk, DiskConfig};

use crate::ops::UpdateRecord;
use crate::replica::Replica;
use crate::token::WriteToken;

/// The flat, name-free identity of one segment (§5.1). The NFS envelope
/// maps file handles onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A replica is identified by (segment, major version): §3.5 "Every file
/// replica is associated with only one token. The new token represents a
/// distinct new file with a distinct set of replicas."
pub type ReplicaKey = (SegmentId, u64);

/// Volatile, holder-side state of an active write stream on one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamState {
    /// Whether the group has been marked unstable for the current stream.
    pub group_unstable: bool,
    /// Time of the most recent write in the stream.
    pub last_write: SimTime,
    /// Bumped on every write; stabilize-checks carry the epoch they were
    /// scheduled under and fire only if it is still current.
    pub epoch: u64,
}

/// One Deceit server.
#[derive(Debug)]
pub struct ServerState {
    /// This server's machine identity.
    pub id: NodeId,
    /// Non-volatile replica storage.
    pub replicas: Disk<ReplicaKey, Replica>,
    /// Non-volatile token storage.
    pub tokens: Disk<ReplicaKey, WriteToken>,
    /// Volatile: per-replica ordered-delivery buffers for in-flight
    /// updates (ABCAST reordering; §3.3 identical-order requirement).
    pub receivers: BTreeMap<ReplicaKey, OrderedReceiver<UpdateRecord>>,
    /// Volatile: cached segment → file-group mapping, so repeat operations
    /// skip the global search (§3.2).
    pub group_cache: BTreeMap<SegmentId, GroupId>,
    /// Volatile: failure suspicion derived from communication outcomes.
    pub fd: FailureDetector,
    /// Volatile: active write-stream state for replicas whose token this
    /// server holds.
    pub streams: BTreeMap<ReplicaKey, StreamState>,
    /// Volatile: replica accesses recorded by the shared (`&self`) read
    /// fast path, applied to `last_access` at the next exclusive entry
    /// so concurrent reads still feed the LRU without mutating replica
    /// state. Deduplicated by key, so it is bounded by the replica
    /// count.
    pub(crate) read_touches: Mutex<BTreeMap<ReplicaKey, SimTime>>,
    /// Count of client operations served by this server (load accounting).
    pub ops_served: u64,
}

impl ServerState {
    /// A fresh server with empty disks.
    pub fn new(id: NodeId, disk_cfg: DiskConfig) -> Self {
        ServerState {
            id,
            replicas: Disk::new(disk_cfg),
            tokens: Disk::new(disk_cfg),
            receivers: BTreeMap::new(),
            group_cache: BTreeMap::new(),
            fd: FailureDetector::new(),
            streams: BTreeMap::new(),
            read_touches: Mutex::new(BTreeMap::new()),
            ops_served: 0,
        }
    }

    /// Records a shared-path read of `key` at `at`, to be applied to the
    /// replica's `last_access` by [`ServerState::take_read_touches`].
    pub(crate) fn note_read(&self, key: ReplicaKey, at: SimTime) {
        let mut touches = self.read_touches.lock().unwrap_or_else(|e| e.into_inner());
        let entry = touches.entry(key).or_insert(at);
        *entry = (*entry).max(at);
    }

    /// Drains the recorded shared-path reads.
    pub(crate) fn take_read_touches(&mut self) -> BTreeMap<ReplicaKey, SimTime> {
        std::mem::take(self.read_touches.get_mut().unwrap_or_else(|e| e.into_inner()))
    }

    /// Simulates a crash: non-volatile state reverts to its durable
    /// contents; volatile state is lost.
    pub fn crash(&mut self) {
        self.replicas.crash();
        self.tokens.crash();
        self.receivers.clear();
        self.group_cache.clear();
        self.fd = FailureDetector::new();
        self.streams.clear();
        self.take_read_touches();
    }

    /// Whether this server stores any replica of `seg` (any major).
    pub fn has_segment(&self, seg: SegmentId) -> bool {
        self.majors_of(seg).next().is_some()
    }

    /// All major versions of `seg` stored here, ascending. A range scan
    /// over the composite `(segment, major)` key: `O(log n)` to find the
    /// segment's group, not a sweep of every replica on the server —
    /// this sits on the concurrent read fast path.
    pub fn majors_of(&self, seg: SegmentId) -> impl Iterator<Item = u64> + '_ {
        self.replicas.keys_in_range(&(seg, 0), &(seg, u64::MAX)).map(|(_, major)| *major)
    }

    /// The highest-numbered (most recent) major of `seg` stored here.
    pub fn latest_major(&self, seg: SegmentId) -> Option<u64> {
        // majors_of is ascending, so the last one is the max.
        self.majors_of(seg).last()
    }

    /// Whether this server holds the write token for a replica.
    pub fn holds_token(&self, key: ReplicaKey) -> bool {
        self.tokens.contains(&key)
    }

    /// The ordered-delivery buffer for a replica, created on first use to
    /// expect the update after the replica's current subversion.
    pub fn receiver_for(&mut self, key: ReplicaKey) -> &mut OrderedReceiver<UpdateRecord> {
        let start = self.replicas.get(&key).map(|r| r.version.sub + 1).unwrap_or(1);
        self.receivers.entry(key).or_insert_with(|| OrderedReceiver::starting_at(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FileParams;
    use deceit_sim::SimTime;

    fn server() -> ServerState {
        ServerState::new(NodeId(0), DiskConfig::workstation())
    }

    #[test]
    fn segment_queries() {
        let mut s = server();
        let seg = SegmentId(7);
        assert!(!s.has_segment(seg));
        s.replicas.put_sync((seg, 0), Replica::new(0, FileParams::default(), SimTime::ZERO));
        s.replicas.put_sync((seg, 3), Replica::new(3, FileParams::default(), SimTime::ZERO));
        assert!(s.has_segment(seg));
        assert_eq!(s.majors_of(seg).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(s.latest_major(seg), Some(3));
        assert_eq!(s.latest_major(SegmentId(9)), None);
    }

    #[test]
    fn crash_preserves_durable_loses_volatile() {
        let mut s = server();
        let seg = SegmentId(1);
        s.replicas.put_sync((seg, 0), Replica::new(0, FileParams::default(), SimTime::ZERO));
        s.group_cache.insert(seg, deceit_isis::GroupId(5));
        s.streams.insert((seg, 0), StreamState::default());
        s.receiver_for((seg, 0));
        s.crash();
        assert!(s.has_segment(seg), "durable replica survives");
        assert!(s.group_cache.is_empty());
        assert!(s.streams.is_empty());
        assert!(s.receivers.is_empty());
    }

    #[test]
    fn receiver_starts_after_current_sub() {
        let mut s = server();
        let seg = SegmentId(1);
        let mut r = Replica::new(0, FileParams::default(), SimTime::ZERO);
        r.version.sub = 4;
        s.replicas.put_sync((seg, 0), r);
        assert_eq!(s.receiver_for((seg, 0)).next_expected(), 5);
        // Unknown replica: expects the first update (sub 1).
        assert_eq!(s.receiver_for((SegmentId(2), 0)).next_expected(), 1);
    }
}
