//! Per-server state.
//!
//! §3.5 fixes what must live in non-volatile storage (replica data and
//! metadata, token state, the handle map); everything else — delivery
//! queues, location caches, the failure detector, write-stream state — is
//! volatile and lost on a crash.
//!
//! All hot state (everything keyed by segment or replica key) lives in
//! the ShardKey-indexed containers of [`crate::hot`], so protocol code
//! reaches it through `&self`: a mutation holding its shard's ring lock
//! rewrites exactly its file's slice of every server without exclusive
//! access to the cell (see the module doc of [`crate::hot`] for the lock
//! discipline).

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

use deceit_isis::{BcastOutcome, FailureDetector, GroupId, OrderedReceiver, SequencedMsg};
use deceit_net::NodeId;
use deceit_storage::DiskConfig;

use crate::hot::{ShardedDisk, ShardedMap};
use crate::ops::UpdateRecord;
use crate::replica::Replica;
use crate::token::WriteToken;

/// The flat, name-free identity of one segment (§5.1). The NFS envelope
/// maps file handles onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A replica is identified by (segment, major version): §3.5 "Every file
/// replica is associated with only one token. The new token represents a
/// distinct new file with a distinct set of replicas."
pub type ReplicaKey = (SegmentId, u64);

/// Volatile, holder-side buffer of updates awaiting batched propagation
/// to the rest of the file group — the buffering half of the
/// asynchronous write pipeline (`ClusterConfig::opt_write_pipeline`).
///
/// Losing this buffer in a crash is safe by construction: every buffered
/// update is already applied (durably, at safety ≥ 1) to the holder's
/// own replica, so recovery finds the authoritative copy intact and the
/// lagging group members are caught up by the §3.1/§3.4 regeneration
/// machinery (stabilize-round state transfer, replica regeneration).
#[derive(Debug, Clone, Default)]
pub(crate) struct OutboundStream {
    /// Updates in subversion order, not yet shipped to the group.
    pub updates: Vec<UpdateRecord>,
    /// Whether a `Pending::PropagateStream` drain is already queued, so
    /// a stream of writes schedules one event, not one per write.
    pub scheduled: bool,
}

/// Volatile, holder-side read lease on one unstable replica
/// (`ClusterConfig::opt_read_leases`).
///
/// While a write stream keeps a file's group unstable, §3.4 forwards
/// every *other* server's reads to the token holder — but the holder
/// itself answers directly, and its replica is the primary copy. The
/// lease is the holder's published promise that its local replica is
/// exactly the acked durable prefix of the stream, so the lock-free read
/// fast path ([`crate::Cluster::try_read_local`]) can serve it without
/// ring locks. The fast path re-reads the lease after copying the data
/// out and declines on any change (a seqlock-style sandwich), so the
/// invalidation discipline is simply *remove before the fact it asserts
/// stops holding*: [token movement](crate::Cluster) removes the lease
/// before the token leaves, stabilize removes it when the stream ends,
/// and a crash clears it with the rest of the volatile state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLease {
    /// The version pair of the stream's acked durable prefix: the fast
    /// path serves the local replica only while its version equals this
    /// exactly.
    pub version: crate::version::VersionPair,
}

/// Volatile, holder-side state of an active write stream on one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamState {
    /// Whether the group has been marked unstable for the current stream.
    pub group_unstable: bool,
    /// Time of the most recent write in the stream.
    pub last_write: deceit_sim::SimTime,
    /// Bumped on every write; stabilize-checks carry the epoch they were
    /// scheduled under and fire only if it is still current.
    pub epoch: u64,
    /// Whether a stabilize-check is already queued for this stream. A
    /// stream of writes keeps exactly one check pending (re-armed to the
    /// newest quiet horizon when it fires stale) instead of queueing one
    /// per write.
    pub check_scheduled: bool,
}

/// One Deceit server.
#[derive(Debug)]
pub struct ServerState {
    /// This server's machine identity.
    pub id: NodeId,
    /// Non-volatile replica storage, sharded by segment.
    pub replicas: ShardedDisk<Replica>,
    /// Non-volatile token storage, sharded by segment.
    pub tokens: ShardedDisk<WriteToken>,
    /// Volatile: per-replica ordered-delivery buffers for in-flight
    /// updates (ABCAST reordering; §3.3 identical-order requirement).
    pub(crate) receivers: ShardedMap<ReplicaKey, OrderedReceiver<UpdateRecord>>,
    /// Volatile: cached segment → file-group mapping, so repeat operations
    /// skip the global search (§3.2).
    pub(crate) group_cache: ShardedMap<SegmentId, GroupId>,
    /// Volatile: failure suspicion derived from communication outcomes.
    /// Per-server (not per-file), so it sits behind its own leaf lock.
    pub(crate) fd: Mutex<FailureDetector>,
    /// Volatile: active write-stream state for replicas whose token this
    /// server holds.
    pub(crate) streams: ShardedMap<ReplicaKey, StreamState>,
    /// Volatile: per-file outbound update buffers of the asynchronous
    /// write pipeline (empty unless `opt_write_pipeline` is on).
    pub(crate) outbound: ShardedMap<ReplicaKey, OutboundStream>,
    /// Volatile: per-file read leases published while this server holds
    /// the token of an unstable replica (empty unless `opt_read_leases`
    /// is on).
    pub(crate) leases: ShardedMap<ReplicaKey, ReadLease>,
    /// Volatile: replica keys with a read-repair catch-up already queued
    /// for this server, so a burst of reads against one laggard schedules
    /// one repair, not one per read (`opt_read_repair` single-flighting).
    pub(crate) repairs: ShardedMap<ReplicaKey, ()>,
    /// Volatile: replica keys with a placement migration toward this
    /// server already queued, so a burst of forwarded reads schedules one
    /// move, not one per read (`opt_placement` single-flighting).
    pub(crate) migrations: ShardedMap<ReplicaKey, ()>,
    /// Count of client operations served by this server (load accounting).
    pub ops_served: AtomicU64,
}

impl ServerState {
    /// A fresh server with empty disks, hot state sharded over `shards`
    /// slots.
    pub fn new(id: NodeId, disk_cfg: DiskConfig, shards: usize) -> Self {
        ServerState {
            id,
            replicas: ShardedDisk::new(disk_cfg, shards),
            tokens: ShardedDisk::new(disk_cfg, shards),
            receivers: ShardedMap::new(shards),
            group_cache: ShardedMap::new(shards),
            fd: Mutex::new(FailureDetector::new()),
            streams: ShardedMap::new(shards),
            outbound: ShardedMap::new(shards),
            leases: ShardedMap::new(shards),
            repairs: ShardedMap::new(shards),
            migrations: ShardedMap::new(shards),
            ops_served: AtomicU64::new(0),
        }
    }

    /// Folds a communication round's outcome into the failure detector.
    pub(crate) fn observe_round(&self, outcome: &BcastOutcome) {
        // lint: allow(lock-order): the failure detector is a private leaf mutex held only for this fold; nothing is acquired under it
        self.fd.lock().unwrap_or_else(|e| e.into_inner()).observe_round(outcome);
    }

    /// Simulates a crash: non-volatile state reverts to its durable
    /// contents; volatile state is lost.
    ///
    /// Leases go first: a read lease is a promise that the holder's
    /// replica state is stable, so it must be revoked before any of
    /// that state reverts — otherwise a racing leased read could
    /// validate against post-crash contents.
    pub fn crash(&self) {
        self.leases.clear();
        self.replicas.crash();
        self.tokens.crash();
        self.receivers.clear();
        self.group_cache.clear();
        // lint: allow(lock-order): the failure detector is a private leaf mutex; the reset holds no other lock
        *self.fd.lock().unwrap_or_else(|e| e.into_inner()) = FailureDetector::new();
        self.streams.clear();
        self.outbound.clear();
        self.repairs.clear();
        self.migrations.clear();
    }

    /// Whether this server stores any replica of `seg` (any major).
    pub fn has_segment(&self, seg: SegmentId) -> bool {
        self.replicas.latest_major(seg).is_some()
    }

    /// All major versions of `seg` stored here, ascending. A range scan
    /// within the segment's one shard slot, not a sweep of every replica
    /// on the server — this sits on the concurrent read fast path.
    pub fn majors_of(&self, seg: SegmentId) -> Vec<u64> {
        self.replicas.majors_of(seg)
    }

    /// The highest-numbered (most recent) major of `seg` stored here.
    pub fn latest_major(&self, seg: SegmentId) -> Option<u64> {
        self.replicas.latest_major(seg)
    }

    /// Whether this server holds the write token for a replica.
    pub fn holds_token(&self, key: ReplicaKey) -> bool {
        self.tokens.contains(&key)
    }

    /// Routes one sequenced update through the replica's ordered-delivery
    /// buffer (created on first use to expect the update after the
    /// replica's current subversion), returning whatever became
    /// deliverable in order.
    pub(crate) fn receive_ordered(
        &self,
        key: ReplicaKey,
        msg: SequencedMsg<UpdateRecord>,
    ) -> Vec<(u64, UpdateRecord)> {
        let start = self.replicas.with_ref(&key, |r| r.map(|r| r.version.sub + 1)).unwrap_or(1);
        self.receivers.with_or_insert(
            key,
            || OrderedReceiver::starting_at(start),
            |r| r.receive(msg),
        )
    }

    /// Drops the ordered-delivery buffer of one replica (token movement,
    /// replica destruction: the next receiver starts from the stored
    /// subversion again).
    pub(crate) fn drop_receiver(&self, key: &ReplicaKey) {
        self.receivers.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FileParams;
    use deceit_sim::SimTime;

    fn server() -> ServerState {
        ServerState::new(NodeId(0), DiskConfig::workstation(), 8)
    }

    #[test]
    fn segment_queries() {
        let s = server();
        let seg = SegmentId(7);
        assert!(!s.has_segment(seg));
        s.replicas.put_sync((seg, 0), Replica::new(0, FileParams::default(), SimTime::ZERO));
        s.replicas.put_sync((seg, 3), Replica::new(3, FileParams::default(), SimTime::ZERO));
        assert!(s.has_segment(seg));
        assert_eq!(s.majors_of(seg), vec![0, 3]);
        assert_eq!(s.latest_major(seg), Some(3));
        assert_eq!(s.latest_major(SegmentId(9)), None);
    }

    #[test]
    fn crash_preserves_durable_loses_volatile() {
        let s = server();
        let seg = SegmentId(1);
        s.replicas.put_sync((seg, 0), Replica::new(0, FileParams::default(), SimTime::ZERO));
        s.group_cache.insert(seg, deceit_isis::GroupId(5));
        s.streams.insert((seg, 0), StreamState::default());
        s.leases.insert(
            (seg, 0),
            ReadLease { version: crate::version::VersionPair { major: 0, sub: 3 } },
        );
        s.repairs.insert((seg, 0), ());
        s.migrations.insert((seg, 0), ());
        s.crash();
        assert!(s.has_segment(seg), "durable replica survives");
        assert!(s.group_cache.is_empty());
        assert!(s.streams.is_empty());
        assert!(s.leases.is_empty(), "read leases are volatile");
        assert!(s.repairs.is_empty(), "repair single-flight flags are volatile");
        assert!(s.migrations.is_empty(), "migration single-flight flags are volatile");
    }

    #[test]
    fn ordered_receiver_starts_after_current_sub() {
        let s = server();
        let seg = SegmentId(1);
        let mut r = Replica::new(0, FileParams::default(), SimTime::ZERO);
        r.version.sub = 4;
        s.replicas.put_sync((seg, 0), r);
        // An update matching the next expected subversion delivers; a
        // stale one does not.
        let upd = |sub: u64| UpdateRecord {
            new_version: crate::version::VersionPair { major: 0, sub },
            op: crate::ops::WriteOp::Truncate(0),
        };
        let out = s.receive_ordered((seg, 0), SequencedMsg { seq: 5, payload: upd(5) });
        assert_eq!(out.len(), 1);
        let out = s.receive_ordered((SegmentId(2), 0), SequencedMsg { seq: 3, payload: upd(3) });
        assert!(out.is_empty(), "unknown replica expects sub 1 first");
    }
}
