//! Deployment configuration.

use deceit_net::{BlastConfig, LatencyModel};
use deceit_sim::SimDuration;
use deceit_storage::DiskConfig;

/// Tunables of one Deceit deployment (one cell).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Intra-cell message latency model.
    pub latency: LatencyModel,
    /// Local disk timing.
    pub disk: DiskConfig,
    /// Blast transfer channel for replica generation (§3.1).
    pub blast: BlastConfig,
    /// "A short period of no write activity" after which the token holder
    /// marks the file stable again (§3.4).
    pub stability_timeout: SimDuration,
    /// Write-behind delay at replicas that are not on the synchronous
    /// reply path: they acknowledge receipt immediately but apply the
    /// update after this delay (§1: "Asynchronous update propagation can
    /// produce dramatic improvements in performance. Note that an update
    /// can be visible to all clients before it has been delivered to all
    /// file replicas.").
    pub lazy_apply_delay: SimDuration,
    /// Delay before a server flushes asynchronously written local state.
    pub flush_delay: SimDuration,
    /// Cost of serving a read from a local stable replica (buffer-cache
    /// hit path).
    pub local_read: SimDuration,
    /// Replicas not accessed within this window count as "extra" and are
    /// eligible for least-recently-used deletion on update (§3.1).
    pub lru_keep: SimDuration,
    /// RNG seed for the run.
    pub seed: u64,
    /// Whether to record protocol trace events (disable in benchmarks).
    pub trace: bool,
    /// Whether to record protocol metrics counters/histograms (disable
    /// in live hosting: the registry sits on the request hot path).
    pub stats: bool,
    /// §3.3 optimization 1: "broadcast an update in the same message with
    /// a token request; replica holders execute those updates upon
    /// receiving the corresponding token pass." When enabled, acquiring a
    /// token for a write costs no separate request round — the update
    /// broadcast carries it. The paper's prototype "currently uses
    /// neither" optimization, so the default is off.
    pub opt_piggyback_acquire: bool,
    /// §3.3 optimization 2: "pass an update to the current token holder
    /// instead of requesting the token if it is likely that there will be
    /// only one update; for example, a small file that is overwritten in a
    /// single update." Off by default, as in the paper.
    pub opt_forward_small: bool,
    /// Size bound below which optimization 2 applies.
    pub forward_small_threshold: usize,
    /// The asynchronous replicated-write pipeline (§3.3's "only the first
    /// s correct replies" taken to its logical end, §1's asynchronous
    /// update propagation): the token holder applies an update locally,
    /// appends it to the file's outbound update stream, and acknowledges
    /// the client as soon as its own state is durable (plus the first
    /// `write_safety - 1` synchronous remote replies, when required).
    /// Propagation to the remaining replicas is deferred work, drained by
    /// the pump with consecutive updates to the same file batched into
    /// one group broadcast. Off by default: the paper's prototype
    /// distributes every update eagerly, and the simulator experiments
    /// reproduce that behavior. The live runtime turns it on.
    pub opt_write_pipeline: bool,
    /// Holder-local read leases: while a write stream keeps a file's
    /// group unstable (§3.4 forwards every other server's reads to the
    /// token holder), the holder itself publishes a volatile per-file
    /// read lease naming its acked durable prefix, and the lock-free
    /// read fast path serves the holder's own unstable replica against
    /// it — the §3.4 "the holder answers directly" case without ring
    /// locks. Off by default: the paper's prototype has no lock-free
    /// read path to recover. The live runtime turns it on.
    pub opt_read_leases: bool,
    /// Read-repair: a read that meets a lagging, unstable replica whose
    /// write stream has gone quiet enqueues one targeted per-file
    /// catch-up (due-gated, single-flighted) that state-transfers the
    /// laggard from the durable primary and marks it stable — instead
    /// of forwarding every subsequent read until the next stabilize
    /// round happens to cover it. Off by default: the paper's prototype
    /// leaves laggards to the §3.4 stabilize horizon. The live runtime
    /// turns it on.
    pub opt_read_repair: bool,
    /// Access-driven replica placement (§3.1 method 4, measured instead
    /// of eager): forwarded reads feed always-on per-(server, file)
    /// access counters, and a server that keeps serving remote reads for
    /// a file past `placement_threshold` gets a replica migrated to it
    /// (deferred, due-gated, single-flighted — see
    /// [`placement`](crate::placement)), after which idle extras are
    /// retired down to the `FileParams::min_replicas` floor. Off by
    /// default: the paper's prototype migrates only files explicitly
    /// marked `migration` in their parameters. The live runtime turns it
    /// on.
    pub opt_placement: bool,
    /// Forwarded reads (decayed, see `placement_epoch`) a server must
    /// accumulate for one file before a migration toward it is proposed.
    pub placement_threshold: u64,
    /// Placement access counters halve once per this much protocol time,
    /// so the migration signal tracks current traffic instead of
    /// all-time popularity.
    pub placement_epoch: SimDuration,
    /// Fault-injection knob for the consistency auditor's mutation test:
    /// when set, the write pipeline's safety lane counts a remote reply
    /// as durable WITHOUT verifying the replica is current through the
    /// acknowledged update (no outbound catch-up, no state transfer on a
    /// sequence gap — the exact hardening PR 4 added). Acked durability
    /// then silently degrades whenever a safety target rejoins with a
    /// gap, which `core::audit` must detect. Never enable outside tests.
    pub danger_skip_safety_currency: bool,
    /// Shard slots the hot state (replica/token tables, delivery buffers,
    /// branch tables, the deferred-work queue) is partitioned into. A
    /// concurrent host's ring locks must use the same count so that
    /// holding a file's ring slot covers exactly the file's data slice.
    /// Clamped to 1..=64 (the pending-work scan is a `u64` mask).
    pub shards: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            latency: LatencyModel::lan(),
            disk: DiskConfig::workstation(),
            blast: BlastConfig::ethernet_10mb(),
            stability_timeout: SimDuration::from_millis(500),
            lazy_apply_delay: SimDuration::from_millis(50),
            flush_delay: SimDuration::from_millis(30),
            local_read: SimDuration::from_millis(2),
            lru_keep: SimDuration::from_secs(300),
            seed: 0xDECE17,
            trace: true,
            stats: true,
            opt_piggyback_acquire: false,
            opt_forward_small: false,
            forward_small_threshold: 4096,
            opt_write_pipeline: false,
            opt_read_leases: false,
            opt_read_repair: false,
            opt_placement: false,
            placement_threshold: 8,
            placement_epoch: SimDuration::from_secs(30),
            danger_skip_safety_currency: false,
            shards: 16,
        }
    }
}

impl ClusterConfig {
    /// A configuration with deterministic fixed network latency, used by
    /// tests that assert exact timings.
    pub fn deterministic() -> Self {
        ClusterConfig {
            latency: LatencyModel::Fixed(SimDuration::from_millis(2)),
            ..ClusterConfig::default()
        }
    }

    /// Sets the seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables tracing, builder-style (for benchmarks).
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Disables metrics recording, builder-style (for live hosting).
    pub fn without_stats(mut self) -> Self {
        self.stats = false;
        self
    }

    /// Enables both §3.3 token-protocol optimizations, builder-style.
    pub fn with_token_optimizations(mut self) -> Self {
        self.opt_piggyback_acquire = true;
        self.opt_forward_small = true;
        self
    }

    /// Enables the asynchronous replicated-write pipeline, builder-style
    /// (see [`ClusterConfig::opt_write_pipeline`]).
    pub fn with_write_pipeline(mut self) -> Self {
        self.opt_write_pipeline = true;
        self
    }

    /// Enables holder-local read leases, builder-style (see
    /// [`ClusterConfig::opt_read_leases`]).
    pub fn with_read_leases(mut self) -> Self {
        self.opt_read_leases = true;
        self
    }

    /// Enables read-repair, builder-style (see
    /// [`ClusterConfig::opt_read_repair`]).
    pub fn with_read_repair(mut self) -> Self {
        self.opt_read_repair = true;
        self
    }

    /// Enables access-driven replica placement, builder-style (see
    /// [`ClusterConfig::opt_placement`]).
    pub fn with_placement(mut self) -> Self {
        self.opt_placement = true;
        self
    }

    /// Disables the safety-lane currency verification, builder-style —
    /// auditor mutation tests only (see
    /// [`ClusterConfig::danger_skip_safety_currency`]).
    pub fn with_danger_skip_safety_currency(mut self) -> Self {
        self.danger_skip_safety_currency = true;
        self
    }

    /// Sets the hot-state shard count, builder-style (clamped to 1..=64).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, 64);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::default();
        assert!(c.stability_timeout > c.lazy_apply_delay, "stabilize after apply");
        assert!(c.trace);
    }

    #[test]
    fn token_optimizations_default_off() {
        // §3.3: "Deceit currently uses neither of these optimizations."
        let c = ClusterConfig::default();
        assert!(!c.opt_piggyback_acquire);
        assert!(!c.opt_forward_small);
        assert!(!c.opt_write_pipeline, "the paper's prototype distributes updates eagerly");
        assert!(!c.opt_read_leases, "the paper's prototype has no lock-free read path");
        assert!(!c.opt_read_repair, "the paper's prototype waits for the stabilize horizon");
        assert!(!c.opt_placement, "the paper's prototype migrates only param-marked files");
        assert!(!c.danger_skip_safety_currency, "the mutation knob must never default on");
        let on = ClusterConfig::default().with_token_optimizations();
        assert!(on.opt_piggyback_acquire && on.opt_forward_small);
        assert!(ClusterConfig::default().with_write_pipeline().opt_write_pipeline);
        assert!(ClusterConfig::default().with_read_leases().opt_read_leases);
        assert!(ClusterConfig::default().with_read_repair().opt_read_repair);
        assert!(ClusterConfig::default().with_placement().opt_placement);
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::deterministic().with_seed(9).without_trace();
        assert_eq!(c.seed, 9);
        assert!(!c.trace);
        assert_eq!(c.latency, LatencyModel::Fixed(SimDuration::from_millis(2)));
    }
}
