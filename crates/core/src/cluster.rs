//! The Deceit deployment: servers + network + event engine.
//!
//! One [`Cluster`] is one Deceit cell: a set of interchangeable servers
//! that "collectively provide the illusion of a single, large server
//! machine" (abstract). Client operations enter at any server (`via`); the
//! cluster executes the §3 protocols against the simulated network,
//! advances the simulated clock by each operation's latency, and drives
//! deferred work (asynchronous propagation, write-back, stability
//! timeouts, background replica generation) through an event queue.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use deceit_isis::GroupTable;
use deceit_net::{Network, NodeId};
use deceit_sim::{EventQueue, SimDuration, SimTime, StatsRegistry, TraceLog};

use crate::config::ClusterConfig;
use crate::error::{DeceitError, DeceitResult};
use crate::event::Pending;
use crate::server::{SegmentId, ServerState};
use crate::trace_events::ProtocolEvent;
use crate::version::BranchTable;

/// The value of a client-visible operation together with the latency the
/// client observed.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult<T> {
    /// Operation result.
    pub value: T,
    /// Client-observed latency of the operation.
    pub latency: SimDuration,
}

/// A logged incomparable-version conflict (§3.6: "a notification is logged
/// into a well known file. It is the responsibility of the user to resolve
/// such conflicts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictRecord {
    /// Segment with divergent versions.
    pub seg: SegmentId,
    /// The two incomparable major version numbers.
    pub majors: (u64, u64),
    /// When the conflict was detected.
    pub at: SimTime,
}

/// One Deceit cell: the paper's unit of deployment (§2.2).
#[derive(Debug)]
pub struct Cluster {
    /// Deployment configuration.
    pub cfg: ClusterConfig,
    /// The simulated network.
    pub net: Network,
    pub(crate) servers: Vec<ServerState>,
    /// The ISIS group directory for this cell.
    pub groups: GroupTable,
    /// Deferred actions.
    pub(crate) events: EventQueue<Pending>,
    clock: SimTime,
    /// Experiment metrics.
    pub stats: StatsRegistry,
    /// Protocol trace (Table 1 regeneration).
    pub trace: TraceLog<ProtocolEvent>,
    /// Per-segment history-tree branch records.
    ///
    /// The paper stores branch records with each replica; we keep the
    /// per-segment union here. This is equivalent for every §3.6 scenario
    /// because version comparisons only ever happen between servers that
    /// can communicate — exactly when the paper's records would be
    /// exchangeable — and it makes reconciliation auditable in one place.
    pub(crate) branches: BTreeMap<SegmentId, BranchTable>,
    /// The "well known file" of version conflicts awaiting the user.
    pub conflicts: Vec<ConflictRecord>,
    /// Segments that have been explicitly deleted; recovering servers
    /// garbage-collect any stale replicas of these.
    pub(crate) deleted: BTreeSet<SegmentId>,
    next_segment: u64,
    next_major: u64,
}

impl Cluster {
    /// Builds a cell of `n_servers` servers, fully connected and all alive.
    pub fn new(n_servers: usize, cfg: ClusterConfig) -> Self {
        assert!(n_servers > 0, "a cell needs at least one server");
        let net = Network::new(cfg.latency.clone(), cfg.seed);
        let servers = (0..n_servers).map(|i| ServerState::new(NodeId::from(i), cfg.disk)).collect();
        let trace = if cfg.trace { TraceLog::new() } else { TraceLog::disabled() };
        Cluster {
            net,
            servers,
            groups: GroupTable::new(),
            events: EventQueue::new(),
            clock: SimTime::ZERO,
            stats: StatsRegistry::new(),
            trace,
            branches: BTreeMap::new(),
            conflicts: Vec::new(),
            deleted: BTreeSet::new(),
            next_segment: 0,
            next_major: 0,
            cfg,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of servers in the cell.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// All server ids.
    pub fn server_ids(&self) -> Vec<NodeId> {
        self.servers.iter().map(|s| s.id).collect()
    }

    /// Read access to one server's state.
    pub fn server(&self, id: NodeId) -> &ServerState {
        &self.servers[id.index()]
    }

    /// Mutable access to one server's state.
    pub fn server_mut(&mut self, id: NodeId) -> &mut ServerState {
        &mut self.servers[id.index()]
    }

    /// Errors unless `via` designates a live server.
    pub fn check_up(&self, via: NodeId) -> DeceitResult<()> {
        if via.index() >= self.servers.len() {
            return Err(DeceitError::NoSuchServer(via));
        }
        if !self.net.is_up(via) {
            return Err(DeceitError::ServerDown(via));
        }
        Ok(())
    }

    /// Allocates a fresh segment id.
    pub(crate) fn alloc_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        id
    }

    /// Allocates a globally unique major version number (§3.5: "Deceit
    /// selects major version numbers carefully to insure global
    /// uniqueness").
    pub(crate) fn alloc_major(&mut self) -> u64 {
        let m = self.next_major;
        self.next_major += 1;
        m
    }

    /// The branch table of one segment.
    pub fn branch_table(&mut self, seg: SegmentId) -> &mut BranchTable {
        self.branches.entry(seg).or_default()
    }

    /// Read-only branch table access.
    pub fn branch_table_ref(&self, seg: SegmentId) -> Option<&BranchTable> {
        self.branches.get(&seg)
    }

    /// Emits a protocol trace event at the current time.
    pub(crate) fn emit(&mut self, ev: ProtocolEvent) {
        self.trace.emit(self.clock, ev);
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    /// Fires every pending event due at or before the current clock.
    pub(crate) fn fire_due(&mut self) {
        while let Some((at, ev)) = self.events.pop_due(self.clock) {
            self.handle_event(at, ev);
        }
    }

    /// Advances the clock by `d`, firing events as they come due.
    pub fn advance(&mut self, d: SimDuration) {
        let deadline = self.clock + d;
        while let Some((at, ev)) = self.events.pop_due(deadline) {
            self.clock = self.clock.max(at);
            self.handle_event(at, ev);
        }
        self.clock = deadline;
    }

    /// Drains the event queue entirely, jumping the clock forward to each
    /// event. Afterwards all propagation, flushing, stabilization, and
    /// background replication has settled.
    pub fn run_until_quiet(&mut self) {
        self.apply_read_touches();
        // A backstop against event-scheduling bugs producing livelock; in
        // practice the queue drains in a handful of iterations.
        let mut budget = 1_000_000u64;
        while let Some((at, ev)) = self.events.pop() {
            self.clock = self.clock.max(at);
            self.handle_event(at, ev);
            budget -= 1;
            assert!(budget > 0, "event queue failed to quiesce");
        }
    }

    /// Fires up to `max_events` pending events regardless of their due
    /// time, jumping the clock forward exactly as [`Cluster::run_until_quiet`]
    /// does, and returns how many fired.
    ///
    /// This is the live runtime's drive method: real threads cannot block
    /// on simulated time, so deferred protocol work (propagation,
    /// write-back, stability timeouts, background replication) is advanced
    /// in bounded slices between client requests. Firing an event "early"
    /// relative to its simulated due time is safe for the same reason
    /// `run_until_quiet` is: every deferred action is valid at any later
    /// point, and the queue drains in the same deterministic
    /// (time, scheduling-order) sequence either way.
    pub fn pump(&mut self, max_events: usize) -> usize {
        self.apply_read_touches();
        let mut fired = 0;
        while fired < max_events {
            match self.events.pop() {
                Some((at, ev)) => {
                    self.clock = self.clock.max(at);
                    self.handle_event(at, ev);
                    fired += 1;
                }
                None => break,
            }
        }
        fired
    }

    /// Fires up to `max_events` pending events belonging to one shard
    /// slot (segments with `seg % shards == slot`, plus per-server
    /// flushes attributed by server id), exactly as [`Cluster::pump`]
    /// fires them but restricted to that slice of the cell.
    ///
    /// Relative order within the slot is preserved — same-segment
    /// actions still apply in their scheduled order — so per-file
    /// outcomes are identical to a global drain; only the interleaving
    /// *across* files changes, which deferred work tolerates by design
    /// (see [`Cluster::pump`]).
    pub fn pump_shard(&mut self, slot: usize, shards: usize, max_events: usize) -> usize {
        self.apply_read_touches();
        // Count the slot's work up front (one non-destructive scan) so
        // the drain pops exactly that many matches and never runs
        // `pop_where`'s no-match probe, which would churn the whole
        // heap. Events the fired handlers push are picked up next pass.
        let budget = self
            .events
            .iter()
            .filter(|ev| crate::shard_slot(ev.shard_hint(), shards) == slot)
            .count()
            .min(max_events);
        let mut fired = 0;
        while fired < budget {
            match self.events.pop_where(|ev| crate::shard_slot(ev.shard_hint(), shards) == slot) {
                Some((at, ev)) => {
                    self.clock = self.clock.max(at);
                    self.handle_event(at, ev);
                    fired += 1;
                }
                None => break,
            }
        }
        fired
    }

    /// The shard slots (out of `shards`) that currently have deferred
    /// work, ascending and deduplicated — lets a host pump only the
    /// slots worth visiting instead of probing every one.
    pub fn pending_slots(&self, shards: usize) -> Vec<usize> {
        let mut hot = vec![false; shards.max(1)];
        for ev in self.events.iter() {
            hot[crate::shard_slot(ev.shard_hint(), shards)] = true;
        }
        hot.iter().enumerate().filter(|(_, &h)| h).map(|(slot, _)| slot).collect()
    }

    /// Number of deferred actions currently awaiting execution.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Applies the replica accesses recorded by the shared read fast
    /// path to `last_access`, so concurrent reads feed LRU retention
    /// (§3.1) exactly as exclusive reads do — just deferred to the next
    /// exclusive entry. Touches use the same non-durable write the
    /// exclusive path uses.
    pub(crate) fn apply_read_touches(&mut self) {
        for i in 0..self.servers.len() {
            let touches = self.servers[i].take_read_touches();
            for (key, at) in touches {
                if let Some(r) = self.servers[i].replicas.get(&key) {
                    if r.last_access < at {
                        let mut touched = r.clone();
                        touched.last_access = at;
                        self.servers[i].replicas.put_async(key, touched);
                    }
                }
            }
        }
    }

    /// Book-keeping shared by all client-visible operations: fire due
    /// events, run the body, advance the clock by the observed latency.
    pub(crate) fn client_op<T>(
        &mut self,
        via: NodeId,
        body: impl FnOnce(&mut Self) -> DeceitResult<(T, SimDuration)>,
    ) -> DeceitResult<OpResult<T>> {
        self.apply_read_touches();
        self.fire_due();
        self.check_up(via)?;
        self.servers[via.index()].ops_served += 1;
        let (value, latency) = body(self)?;
        self.clock += latency;
        self.fire_due();
        Ok(OpResult { value, latency })
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// Crashes a server "without notification" (§2.3). Volatile state is
    /// lost; unflushed asynchronous writes are lost; its pending deferred
    /// actions are cancelled.
    pub fn crash_server(&mut self, id: NodeId) {
        self.net.crash(id);
        self.servers[id.index()].crash();
        self.events.retain(|e| e.owner() != id);
        self.stats.incr("cluster/crashes");
    }

    /// Imposes a network partition between the given groups of servers.
    pub fn split(&mut self, groups: &[&[NodeId]]) {
        self.net.split(groups);
        self.stats.incr("cluster/partitions");
    }

    /// Heals any partition and reconciles divergent versions (§3.6).
    pub fn heal(&mut self) {
        self.net.heal();
        self.reconcile_all();
    }

    /// Reachable-from-`from` servers currently storing a replica of `key`.
    pub(crate) fn reachable_replica_holders(
        &self,
        from: NodeId,
        key: crate::server::ReplicaKey,
    ) -> Vec<NodeId> {
        self.servers
            .iter()
            .filter(|s| s.replicas.contains(&key) && self.net.reachable(from, s.id))
            .map(|s| s.id)
            .collect()
    }

    /// All servers (any reachability) currently storing a replica of `key`.
    pub(crate) fn all_replica_holders(&self, key: crate::server::ReplicaKey) -> Vec<NodeId> {
        self.servers.iter().filter(|s| s.replicas.contains(&key)).map(|s| s.id).collect()
    }

    /// The live members of the segment's file group, if any.
    pub fn group_members(&self, seg: SegmentId) -> Option<(deceit_isis::GroupId, Vec<NodeId>)> {
        let gid = self.groups.lookup(&group_name(seg))?;
        let view = self.groups.view(gid).ok()?;
        Some((gid, view.members.iter().copied().collect()))
    }
}

/// The ISIS group name for a segment's file group.
pub(crate) fn group_name(seg: SegmentId) -> String {
    format!("file:{}", seg.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = Cluster::new(4, ClusterConfig::deterministic());
        assert_eq!(c.num_servers(), 4);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.server_ids().len(), 4);
        assert!(c.check_up(NodeId(3)).is_ok());
        assert_eq!(c.check_up(NodeId(9)), Err(DeceitError::NoSuchServer(NodeId(9))));
    }

    #[test]
    fn crash_makes_server_unavailable() {
        let mut c = Cluster::new(2, ClusterConfig::deterministic());
        c.crash_server(NodeId(1));
        assert_eq!(c.check_up(NodeId(1)), Err(DeceitError::ServerDown(NodeId(1))));
        assert_eq!(c.stats.counter("cluster/crashes"), 1);
    }

    #[test]
    fn advance_moves_clock() {
        let mut c = Cluster::new(1, ClusterConfig::deterministic());
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_micros(5_000));
    }

    #[test]
    fn allocators_are_unique() {
        let mut c = Cluster::new(1, ClusterConfig::deterministic());
        let a = c.alloc_segment();
        let b = c.alloc_segment();
        assert_ne!(a, b);
        assert_ne!(c.alloc_major(), c.alloc_major());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cell_rejected() {
        let _ = Cluster::new(0, ClusterConfig::default());
    }

    #[test]
    fn shared_reads_feed_lru_on_next_exclusive_entry() {
        let mut c = Cluster::new(1, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.write(NodeId(0), seg, crate::ops::WriteOp::replace(b"touch me"), None).unwrap();
        c.run_until_quiet();
        let key = (seg, c.server(NodeId(0)).latest_major(seg).unwrap());
        let before = c.server(NodeId(0)).replicas.get(&key).unwrap().last_access;

        c.advance(SimDuration::from_millis(500));
        let read = c.try_read_local(NodeId(0), seg, None, 0, 16).expect("local stable replica");
        assert_eq!(&read.value.data[..], b"touch me");
        // The shared path records the access without mutating the
        // replica; the next exclusive entry applies it.
        assert_eq!(c.server(NodeId(0)).replicas.get(&key).unwrap().last_access, before);
        c.apply_read_touches();
        let after = c.server(NodeId(0)).replicas.get(&key).unwrap().last_access;
        assert!(after > before, "LRU input must advance: {before:?} -> {after:?}");
    }
}
