//! The Deceit deployment: servers + network + event engine.
//!
//! One [`Cluster`] is one Deceit cell: a set of interchangeable servers
//! that "collectively provide the illusion of a single, large server
//! machine" (abstract). Client operations enter at any server (`via`); the
//! cluster executes the §3 protocols against the simulated network,
//! advances the simulated clock by each operation's latency, and drives
//! deferred work (asynchronous propagation, write-back, stability
//! timeouts, background replica generation) through per-shard event
//! queues.
//!
//! # Two ways in
//!
//! The *exclusive* entry points (`&mut self`: [`Cluster::write`],
//! [`Cluster::read`], failure injection, recovery, settling) are the
//! simulator's API and the concurrent host's fallback path; they may
//! touch anything and fire any due deferred work.
//!
//! The *sharded* entry points (`&self` with an explicit slot list:
//! [`Cluster::write_sharded`] and friends) are the concurrent host's
//! mutation fast path. The caller declares — and must hold the ring
//! locks for — the shard slots the operation's [`crate::OpClass`]
//! names; the operation then only touches hot state in those slots
//! (plus cold cell state behind its own leaf locks) and only fires
//! deferred work belonging to them. See [`crate::hot`] for the data-lock
//! discipline that makes the interleaving sound.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use deceit_isis::GroupTable;
use deceit_net::{Network, NodeId};
use deceit_sim::{SimDuration, SimTime, StatsRegistry, TraceLog};

use crate::config::ClusterConfig;
use crate::error::{DeceitError, DeceitResult};
use crate::host::shard_slot;
use crate::hot::{ShardedEvents, ShardedMap};
use crate::obs::ObsCore;
use crate::server::{SegmentId, ServerState};
use crate::trace_events::ProtocolEvent;
use crate::version::BranchTable;

/// The value of a client-visible operation together with the latency the
/// client observed.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult<T> {
    /// Operation result.
    pub value: T,
    /// Client-observed latency of the operation.
    pub latency: SimDuration,
}

/// A logged incomparable-version conflict (§3.6: "a notification is logged
/// into a well known file. It is the responsibility of the user to resolve
/// such conflicts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictRecord {
    /// Segment with divergent versions.
    pub seg: SegmentId,
    /// The two incomparable major version numbers.
    pub majors: (u64, u64),
    /// When the conflict was detected.
    pub at: SimTime,
}

/// Which slice of the cell an operation is entitled to touch.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpScope<'a> {
    /// The exclusive path: everything, including every slot's due events.
    Global,
    /// The sharded path: only the named slots' hot state and due events.
    /// The caller holds these slots' ring locks.
    Slots(&'a [usize]),
}

/// One Deceit cell: the paper's unit of deployment (§2.2).
#[derive(Debug)]
pub struct Cluster {
    /// Deployment configuration.
    pub cfg: ClusterConfig,
    /// The simulated network. Sending is `&self` (internally locked);
    /// topology changes (crash, partition) require `&mut` and only ever
    /// happen on the exclusive path.
    pub net: Network,
    pub(crate) servers: Vec<ServerState>,
    /// The ISIS group directory for this cell (internally synchronized).
    pub groups: GroupTable,
    /// Deferred actions, partitioned by shard slot.
    pub(crate) events: ShardedEvents,
    /// Protocol time, in microseconds. Monotone; advanced by operation
    /// latencies and event due times.
    clock: AtomicU64,
    /// Experiment metrics (internally synchronized).
    pub stats: StatsRegistry,
    /// Protocol trace (Table 1 regeneration; internally synchronized).
    pub trace: TraceLog<ProtocolEvent>,
    /// Always-on observability: per-server flight recorder plus the
    /// core-side histograms and counters. Unlike `trace`/`stats` this
    /// has no off switch — it is bounded and lock-free (or nearly so)
    /// by construction, so live hosting keeps it running.
    pub obs: ObsCore,
    /// Per-segment history-tree branch records, sharded by segment.
    ///
    /// The paper stores branch records with each replica; we keep the
    /// per-segment union here. This is equivalent for every §3.6 scenario
    /// because version comparisons only ever happen between servers that
    /// can communicate — exactly when the paper's records would be
    /// exchangeable — and it makes reconciliation auditable in one place.
    pub(crate) branches: ShardedMap<SegmentId, BranchTable>,
    /// The "well known file" of version conflicts awaiting the user.
    /// Only written on the exclusive path (recovery, reconciliation,
    /// version deletion), so it needs no interior lock.
    pub conflicts: Vec<ConflictRecord>,
    /// Segments that have been explicitly deleted; recovering servers
    /// garbage-collect any stale replicas of these. Behind a leaf lock:
    /// the sharded create path's rollback deletes its newborn segment.
    pub(crate) deleted: Mutex<BTreeSet<SegmentId>>,
    next_segment: AtomicU64,
    next_major: AtomicU64,
}

impl Cluster {
    /// Builds a cell of `n_servers` servers, fully connected and all alive.
    pub fn new(n_servers: usize, cfg: ClusterConfig) -> Self {
        assert!(n_servers > 0, "a cell needs at least one server");
        let shards = cfg.shards.clamp(1, 64);
        let net = Network::new(cfg.latency.clone(), cfg.seed);
        let servers =
            (0..n_servers).map(|i| ServerState::new(NodeId::from(i), cfg.disk, shards)).collect();
        let trace = if cfg.trace { TraceLog::new() } else { TraceLog::disabled() };
        let stats = if cfg.stats { StatsRegistry::new() } else { StatsRegistry::disabled() };
        Cluster {
            net,
            servers,
            groups: GroupTable::new(),
            events: ShardedEvents::new(shards),
            clock: AtomicU64::new(0),
            stats,
            trace,
            obs: ObsCore::new(n_servers),
            branches: ShardedMap::new(shards),
            conflicts: Vec::new(),
            deleted: Mutex::new(BTreeSet::new()),
            next_segment: AtomicU64::new(0),
            next_major: AtomicU64::new(0),
            cfg,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.clock.load(Ordering::Relaxed))
    }

    /// Advances the clock to at least `at` (events jump time forward).
    pub(crate) fn clock_to(&self, at: SimTime) {
        self.clock.fetch_max(at.as_micros(), Ordering::Relaxed);
    }

    /// Adds an operation's latency to the clock.
    pub(crate) fn clock_add(&self, d: SimDuration) {
        self.clock.fetch_add(d.as_micros(), Ordering::Relaxed);
    }

    /// The number of shard slots the hot state is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.events.shard_count()
    }

    /// The shard slot of one segment.
    pub fn slot_of(&self, seg: SegmentId) -> usize {
        shard_slot(seg.0, self.shard_count())
    }

    /// Number of servers in the cell.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// All server ids.
    pub fn server_ids(&self) -> Vec<NodeId> {
        self.servers.iter().map(|s| s.id).collect()
    }

    /// Read access to one server's state.
    pub fn server(&self, id: NodeId) -> &ServerState {
        &self.servers[id.index()]
    }

    /// Errors unless `via` designates a live server.
    pub fn check_up(&self, via: NodeId) -> DeceitResult<()> {
        if via.index() >= self.servers.len() {
            return Err(DeceitError::NoSuchServer(via));
        }
        if !self.net.is_up(via) {
            return Err(DeceitError::ServerDown(via));
        }
        Ok(())
    }

    /// Allocates a fresh segment id.
    pub(crate) fn alloc_segment(&self) -> SegmentId {
        SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a globally unique major version number (§3.5: "Deceit
    /// selects major version numbers carefully to insure global
    /// uniqueness").
    pub(crate) fn alloc_major(&self) -> u64 {
        self.next_major.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs `f` on the branch table of one segment (created empty on
    /// first use), under its shard's data lock.
    pub fn with_branch_table<R>(&self, seg: SegmentId, f: impl FnOnce(&mut BranchTable) -> R) -> R {
        self.branches.with_or_insert(seg, BranchTable::default, f)
    }

    /// An owned snapshot of one segment's branch table (empty if never
    /// materialized).
    pub fn branch_table_snapshot(&self, seg: SegmentId) -> BranchTable {
        self.branches.get(&seg).unwrap_or_default()
    }

    /// Emits a protocol trace event at the current time.
    pub(crate) fn emit(&self, ev: ProtocolEvent) {
        self.trace.emit(self.now(), ev);
    }

    /// Emits a protocol event attributed to the server that performed
    /// it: the flight recorder keeps it in `actor`'s ring (bounded,
    /// always on) and the trace log records it when enabled.
    pub(crate) fn emit_from(&self, actor: NodeId, ev: ProtocolEvent) {
        self.obs.flight.record(actor, self.now(), ev.clone());
        self.trace.emit(self.now(), ev);
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    /// Fires every pending event due at or before the current clock,
    /// within the given scope.
    pub(crate) fn fire_due(&self, scope: OpScope<'_>) {
        if self.events.len() == 0 {
            return;
        }
        loop {
            let due = match scope {
                OpScope::Global => self.events.pop_due(self.now()),
                OpScope::Slots(slots) => self.events.pop_due_slots(slots, self.now()),
            };
            match due {
                Some((at, ev)) => self.handle_event(at, ev),
                None => break,
            }
        }
    }

    /// Advances the clock by `d`, firing events as they come due.
    pub fn advance(&mut self, d: SimDuration) {
        self.advance_scope(OpScope::Global, d);
    }

    /// The sharded path's clock advance: fires only the named slots' due
    /// events (the §5.1 restart backoff needs *this file's* lazy applies
    /// to land before the re-read; other files' work belongs to whoever
    /// holds their locks).
    pub fn advance_sharded(&self, slots: &[usize], d: SimDuration) {
        self.advance_scope(OpScope::Slots(slots), d);
    }

    fn advance_scope(&self, scope: OpScope<'_>, d: SimDuration) {
        let deadline = self.now() + d;
        loop {
            let due = match scope {
                OpScope::Global => self.events.pop_due(deadline),
                OpScope::Slots(slots) => self.events.pop_due_slots(slots, deadline),
            };
            match due {
                Some((at, ev)) => {
                    self.clock_to(at);
                    self.handle_event(at, ev);
                }
                None => break,
            }
        }
        self.clock_to(deadline);
    }

    /// Drains the event queue entirely, jumping the clock forward to each
    /// event. Afterwards all propagation, flushing, stabilization, and
    /// background replication has settled.
    pub fn run_until_quiet(&mut self) {
        self.apply_read_touches();
        // A backstop against event-scheduling bugs producing livelock; in
        // practice the queue drains in a handful of iterations.
        let mut budget = 1_000_000u64;
        while let Some((at, ev)) = self.events.pop() {
            self.clock_to(at);
            self.handle_event(at, ev);
            budget -= 1;
            assert!(budget > 0, "event queue failed to quiesce");
        }
    }

    /// Fires up to `max_events` pending events regardless of their due
    /// time, jumping the clock forward exactly as [`Cluster::run_until_quiet`]
    /// does, and returns how many fired.
    ///
    /// This is the live runtime's drive method: real threads cannot block
    /// on simulated time, so deferred protocol work (propagation,
    /// write-back, stability timeouts, background replication) is advanced
    /// in bounded slices between client requests. Firing an event "early"
    /// relative to its simulated due time is safe for the same reason
    /// `run_until_quiet` is: every deferred action is valid at any later
    /// point, and the queue drains in the same deterministic
    /// (time, scheduling-order) sequence either way.
    pub fn pump(&mut self, max_events: usize) -> usize {
        self.apply_read_touches();
        let mut fired = 0;
        while fired < max_events {
            match self.events.pop() {
                Some((at, ev)) => {
                    self.clock_to(at);
                    self.handle_event(at, ev);
                    fired += 1;
                }
                None => break,
            }
        }
        fired
    }

    /// Fires up to `max_events` *ready* events belonging to one shard
    /// slot, exactly as [`Cluster::pump`] fires them but restricted to
    /// that slice of the cell — and through `&self`, so a concurrent
    /// host's pump runs it under the shared cell lock plus the slot's
    /// ring lock.
    ///
    /// "Ready" means due, or not time-gated ([`Pending::due_gated`]):
    /// ordinary deferred work fires as soon as the pump has capacity,
    /// but a stability check is left until the protocol clock genuinely
    /// reaches its quiet horizon — firing it early would both declare a
    /// busy stream quiet and drag the shared clock forward, thrashing
    /// every other stream's stability state.
    ///
    /// Relative order within the slot is preserved — same-segment
    /// actions still apply in their scheduled order — so per-file
    /// outcomes are identical to a global drain; only the interleaving
    /// *across* files changes, which deferred work tolerates by design
    /// (see [`Cluster::pump`]).
    pub fn pump_shard(&self, slot: usize, max_events: usize) -> usize {
        self.apply_read_touches_slot(slot);
        // Bound the drain by the work present at entry so events the
        // fired handlers push are picked up next pass, not chased
        // forever within one slice.
        let budget = self.events.slot_len(slot).min(max_events);
        let mut fired = 0;
        while fired < budget {
            match self.events.pop_slot_ready(slot, self.now()) {
                Some((at, ev)) => {
                    self.clock_to(at);
                    self.handle_event(at, ev);
                    fired += 1;
                }
                None => break,
            }
        }
        fired
    }

    /// Bitmask of shard slots with deferred work a pump can fire *now* —
    /// due events plus anything not time-gated. Allocation-free, so an
    /// idle pump can poll it cheaply; slots holding only parked future
    /// stability checks report clear rather than drawing the pump onto
    /// their ring locks every interval.
    pub fn pending_shard_mask(&self) -> u64 {
        self.events.ready_mask(self.now())
    }

    /// Number of deferred actions currently awaiting execution.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Applies the replica accesses recorded by the shared read fast
    /// path to `last_access`, so concurrent reads feed LRU retention
    /// (§3.1) exactly as exclusive reads do — just deferred to the next
    /// engine entry covering the key's slot. The fold happens atomically
    /// under each slot's data lock (see [`crate::hot::ShardedDisk`]), so
    /// it can never clobber a concurrent mutation.
    pub(crate) fn apply_read_touches(&self) {
        for s in &self.servers {
            s.replicas.apply_touches_all(&touch_last_access);
        }
    }

    /// Slot-scoped form of [`Cluster::apply_read_touches`].
    pub(crate) fn apply_read_touches_slot(&self, slot: usize) {
        for s in &self.servers {
            s.replicas.apply_touches_slot(slot, &touch_last_access);
        }
    }

    fn apply_read_touches_scope(&self, scope: OpScope<'_>) {
        match scope {
            OpScope::Global => self.apply_read_touches(),
            OpScope::Slots(slots) => {
                for &slot in slots {
                    self.apply_read_touches_slot(slot);
                }
            }
        }
    }

    /// Book-keeping shared by all client-visible operations: fire due
    /// events, run the body, advance the clock by the observed latency.
    ///
    /// On the sharded path ([`OpScope::Slots`]) every step is restricted
    /// to the slots the caller's ring locks cover.
    pub(crate) fn client_op_scoped<T>(
        &self,
        via: NodeId,
        scope: OpScope<'_>,
        body: impl FnOnce(&Self) -> DeceitResult<(T, SimDuration)>,
    ) -> DeceitResult<OpResult<T>> {
        self.apply_read_touches_scope(scope);
        self.fire_due(scope);
        self.check_up(via)?;
        self.server(via).ops_served.fetch_add(1, Ordering::Relaxed);
        let (value, latency) = body(self)?;
        self.clock_add(latency);
        self.fire_due(scope);
        Ok(OpResult { value, latency })
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// Crashes a server "without notification" (§2.3). Volatile state is
    /// lost; unflushed asynchronous writes are lost; its pending deferred
    /// actions are cancelled.
    pub fn crash_server(&mut self, id: NodeId) {
        self.net.crash(id);
        self.servers[id.index()].crash();
        self.events.retain(|e| e.owner() != id);
        self.stats.incr("cluster/crashes");
    }

    /// Imposes a network partition between the given groups of servers.
    pub fn split(&mut self, groups: &[&[NodeId]]) {
        self.net.split(groups);
        self.stats.incr("cluster/partitions");
    }

    /// Heals any partition and reconciles divergent versions (§3.6).
    pub fn heal(&mut self) {
        self.net.heal();
        self.reconcile_all();
    }

    /// Reachable-from-`from` servers currently storing a replica of `key`.
    pub(crate) fn reachable_replica_holders(
        &self,
        from: NodeId,
        key: crate::server::ReplicaKey,
    ) -> Vec<NodeId> {
        self.servers
            .iter()
            .filter(|s| s.replicas.contains(&key) && self.net.reachable(from, s.id))
            .map(|s| s.id)
            .collect()
    }

    /// All servers (any reachability) currently storing a replica of `key`.
    pub(crate) fn all_replica_holders(&self, key: crate::server::ReplicaKey) -> Vec<NodeId> {
        self.servers.iter().filter(|s| s.replicas.contains(&key)).map(|s| s.id).collect()
    }

    /// The live members of the segment's file group, if any.
    pub fn group_members(&self, seg: SegmentId) -> Option<(deceit_isis::GroupId, Vec<NodeId>)> {
        self.groups.members_by_name(&group_name(seg))
    }

    /// Whether `seg` is recorded as deleted.
    pub(crate) fn is_deleted(&self, seg: SegmentId) -> bool {
        // lint: allow(lock-order): the deleted-segment set is a cell-wide leaf mutex held for one set probe; nothing is acquired under it
        self.deleted.lock().unwrap_or_else(|e| e.into_inner()).contains(&seg)
    }

    /// Records `seg` as deleted (recovering servers GC stale replicas).
    pub(crate) fn mark_deleted(&self, seg: SegmentId) {
        // lint: allow(lock-order): same leaf mutex as is_deleted; held for one insert
        self.deleted.lock().unwrap_or_else(|e| e.into_inner()).insert(seg);
    }
}

/// The LRU fold applied by read-touch application: advance `last_access`
/// monotonically, reporting whether anything changed.
fn touch_last_access(r: &mut crate::replica::Replica, at: SimTime) -> bool {
    if r.last_access < at {
        r.last_access = at;
        true
    } else {
        false
    }
}

/// The ISIS group name for a segment's file group.
pub(crate) fn group_name(seg: SegmentId) -> String {
    format!("file:{}", seg.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = Cluster::new(4, ClusterConfig::deterministic());
        assert_eq!(c.num_servers(), 4);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.server_ids().len(), 4);
        assert!(c.check_up(NodeId(3)).is_ok());
        assert_eq!(c.check_up(NodeId(9)), Err(DeceitError::NoSuchServer(NodeId(9))));
        assert_eq!(c.shard_count(), ClusterConfig::default().shards);
    }

    #[test]
    fn crash_makes_server_unavailable() {
        let mut c = Cluster::new(2, ClusterConfig::deterministic());
        c.crash_server(NodeId(1));
        assert_eq!(c.check_up(NodeId(1)), Err(DeceitError::ServerDown(NodeId(1))));
        assert_eq!(c.stats.counter("cluster/crashes"), 1);
    }

    #[test]
    fn advance_moves_clock() {
        let mut c = Cluster::new(1, ClusterConfig::deterministic());
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_micros(5_000));
    }

    #[test]
    fn allocators_are_unique() {
        let c = Cluster::new(1, ClusterConfig::deterministic());
        let a = c.alloc_segment();
        let b = c.alloc_segment();
        assert_ne!(a, b);
        assert_ne!(c.alloc_major(), c.alloc_major());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cell_rejected() {
        let _ = Cluster::new(0, ClusterConfig::default());
    }

    #[test]
    fn shared_reads_feed_lru_on_next_engine_entry() {
        let mut c = Cluster::new(1, ClusterConfig::deterministic());
        let seg = c.create(NodeId(0)).unwrap().value;
        c.write(NodeId(0), seg, crate::ops::WriteOp::replace(b"touch me"), None).unwrap();
        c.run_until_quiet();
        let key = (seg, c.server(NodeId(0)).latest_major(seg).unwrap());
        let before = c.server(NodeId(0)).replicas.get(&key).unwrap().last_access;

        c.advance(SimDuration::from_millis(500));
        let read = c.try_read_local(NodeId(0), seg, None, 0, 16).expect("local stable replica");
        assert_eq!(&read.value.data[..], b"touch me");
        // The shared path records the access without mutating the
        // replica; the next engine entry covering the slot applies it.
        assert_eq!(c.server(NodeId(0)).replicas.get(&key).unwrap().last_access, before);
        c.apply_read_touches();
        let after = c.server(NodeId(0)).replicas.get(&key).unwrap().last_access;
        assert!(after > before, "LRU input must advance: {before:?} -> {after:?}");
    }

    #[test]
    fn sharded_advance_only_fires_own_slots() {
        let mut c = Cluster::new(3, ClusterConfig::deterministic());
        let seg_a = c.create(NodeId(0)).unwrap().value;
        let seg_b = c.create(NodeId(0)).unwrap().value;
        c.set_params(
            NodeId(0),
            seg_a,
            crate::params::FileParams { min_replicas: 3, ..Default::default() },
        )
        .unwrap();
        c.set_params(
            NodeId(0),
            seg_b,
            crate::params::FileParams { min_replicas: 3, ..Default::default() },
        )
        .unwrap();
        c.run_until_quiet();
        c.write(NodeId(0), seg_a, crate::ops::WriteOp::replace(b"a"), None).unwrap();
        c.write(NodeId(0), seg_b, crate::ops::WriteOp::replace(b"b"), None).unwrap();
        let (slot_a, slot_b) = (c.slot_of(seg_a), c.slot_of(seg_b));
        assert_ne!(slot_a, slot_b, "consecutive segments land in distinct slots");
        assert!(c.pending_events() > 0);
        // Advancing within slot A's scope must not fire slot B's work.
        let b_before = c.events.slot_len(slot_b);
        c.advance_sharded(&[slot_a], SimDuration::from_secs(10));
        assert_eq!(c.events.slot_len(slot_a), 0, "own slot drains");
        assert_eq!(c.events.slot_len(slot_b), b_before, "foreign slot untouched");
        c.run_until_quiet();
    }
}
