//! Replica state and metadata.

use deceit_sim::SimTime;
use deceit_storage::{SegmentData, StoredSize};

use crate::params::FileParams;
use crate::version::VersionPair;

/// The stability marker of one replica (§3.4).
///
/// "Before a file can be modified, all members of the file group are
/// notified that the file is unstable. … After a short period of no write
/// activity, the token holder notifies all other members of the group that
/// the file is stable again."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaState {
    /// The replica is up to date and may serve reads locally.
    #[default]
    Stable,
    /// An update stream is (or may be) in progress; reads must be forwarded
    /// to the token holder (§3.4), and after a failure this marker is the
    /// signal that the replica may be inconsistent (§3.6).
    Unstable,
}

/// One non-volatile replica of one version of a segment (§3.5 lists its
/// required contents: "the actual data of the file, the replica state, and
/// the version pair").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica {
    /// Version pair of the history this replica has applied.
    pub version: VersionPair,
    /// Stability marker.
    pub state: ReplicaState,
    /// Segment contents.
    pub data: SegmentData,
    /// Semantic parameters (replicated with the file so any server can
    /// answer `getparam` locally).
    pub params: FileParams,
    /// Last client access through this server — drives least-recently-used
    /// deletion of extra replicas (§3.1) and migration decisions.
    pub last_access: SimTime,
}

impl Replica {
    /// A brand-new, empty, stable replica at the given initial version.
    pub fn new(major: u64, params: FileParams, now: SimTime) -> Self {
        Replica {
            version: VersionPair::initial(major),
            state: ReplicaState::Stable,
            data: SegmentData::new(),
            params,
            last_access: now,
        }
    }

    /// A copy of an existing replica (replica generation, §3.1: "File data
    /// is drawn from the existing available replica").
    pub fn cloned_from(other: &Replica, now: SimTime) -> Self {
        Replica { last_access: now, ..other.clone() }
    }

    /// Whether this replica may serve a read locally.
    pub fn is_stable(&self) -> bool {
        self.state == ReplicaState::Stable
    }
}

impl StoredSize for Replica {
    fn stored_size(&self) -> usize {
        // Data plus a small metadata record (version pair, state, params).
        self.data.stored_size() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_replica_is_stable_and_empty() {
        let r = Replica::new(5, FileParams::default(), SimTime::ZERO);
        assert!(r.is_stable());
        assert_eq!(r.version, VersionPair { major: 5, sub: 0 });
        assert!(r.data.is_empty());
    }

    #[test]
    fn clone_preserves_contents_and_version() {
        let mut r = Replica::new(1, FileParams::important(2), SimTime::ZERO);
        r.data.append(b"body");
        r.version = r.version.bump();
        let t = SimTime::from_micros(99);
        let c = Replica::cloned_from(&r, t);
        assert_eq!(c.version, r.version);
        assert_eq!(c.data, r.data);
        assert_eq!(c.params, r.params);
        assert_eq!(c.last_access, t);
    }

    #[test]
    fn stored_size_includes_metadata() {
        let mut r = Replica::new(1, FileParams::default(), SimTime::ZERO);
        assert_eq!(r.stored_size(), 64);
        r.data.append(&[0u8; 100]);
        assert_eq!(r.stored_size(), 164);
    }
}
