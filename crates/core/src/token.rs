//! Write tokens.
//!
//! §3.3: "A write-token is associated with each file group. Only a server
//! that holds the token is allowed to distribute updates to the
//! corresponding file group." §3.5 adds: "A version pair is stored with
//! each write token" and the token holder "always has an upper bound on
//! the total number of replicas".

use std::collections::BTreeSet;

use deceit_net::NodeId;
use deceit_storage::StoredSize;

use crate::version::VersionPair;

/// The write token for one version (major) of one segment.
///
/// Stored in non-volatile memory at the holding server (§3.5: "each server
/// stores all state information relating to each token that is held").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteToken {
    /// "The token version pair can be compared to a replica version pair
    /// to quickly decide if a replica has received every update through
    /// that token."
    pub version: VersionPair,
    /// Whether the token is currently enabled. Under write availability
    /// "medium", "a token becomes disabled if the majority of the replicas
    /// becomes unavailable" (§4).
    pub enabled: bool,
    /// The replica holders known to the token holder. Its size is the
    /// holder's upper bound on the replica count, used in the majority
    /// computation of §3.5.
    pub holders: BTreeSet<NodeId>,
}

impl WriteToken {
    /// A fresh token for a new file version with one initial replica.
    pub fn new(version: VersionPair, first_holder: NodeId) -> Self {
        let mut holders = BTreeSet::new();
        holders.insert(first_holder);
        WriteToken { version, enabled: true, holders }
    }

    /// The holder's upper bound on the number of replicas (§3.5: "the
    /// total number of replicas is taken to be the maximum of the minimum
    /// replica level and the upper bound").
    pub fn replica_upper_bound(&self) -> usize {
        self.holders.len()
    }

    /// Total replicas assumed for majority computations.
    pub fn assumed_total(&self, min_replicas: usize) -> usize {
        self.replica_upper_bound().max(min_replicas)
    }

    /// Number of available replicas that constitutes a majority.
    pub fn majority(&self, min_replicas: usize) -> usize {
        crate::params::FileParams::majority_of(self.assumed_total(min_replicas))
    }
}

impl StoredSize for WriteToken {
    fn stored_size(&self) -> usize {
        32 + 8 * self.holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn new_token_starts_enabled_with_one_holder() {
        let t = WriteToken::new(VersionPair::initial(3), n(0));
        assert!(t.enabled);
        assert_eq!(t.replica_upper_bound(), 1);
        assert_eq!(t.version, VersionPair { major: 3, sub: 0 });
    }

    #[test]
    fn majority_uses_max_of_bound_and_level() {
        let mut t = WriteToken::new(VersionPair::initial(0), n(0));
        t.holders.insert(n(1));
        t.holders.insert(n(2));
        // Upper bound 3, min level 1 → total 3 → majority 2.
        assert_eq!(t.majority(1), 2);
        // Min level 5 dominates the bound → total 5 → majority 3.
        assert_eq!(t.majority(5), 3);
        assert_eq!(t.assumed_total(5), 5);
    }

    #[test]
    fn stored_size_grows_with_holders() {
        let mut t = WriteToken::new(VersionPair::initial(0), n(0));
        let s1 = t.stored_size();
        t.holders.insert(n(1));
        assert!(t.stored_size() > s1);
    }
}
