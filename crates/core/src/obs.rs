//! Always-on observability primitives: lock-free latency histograms,
//! the protocol flight recorder, and the core-side counters they feed.
//!
//! The live runtime disables the [`deceit_sim::StatsRegistry`] and the
//! trace log on the request hot path (see `RuntimeConfig::new`), which
//! until now meant the deployed system was throughput-only: no latency
//! distribution, no protocol-event visibility, no contention signal.
//! Everything in this module is built to stay on in production:
//!
//! * [`AtomicHistogram`] — a fixed-footprint, log-bucketed (HDR-style)
//!   histogram of `u64` samples. Recording is a handful of relaxed
//!   atomic adds: no locks, no allocation, safe from any thread.
//! * [`FlightRecorder`] — a bounded per-server ring of timestamped
//!   [`ProtocolEvent`]s. Unlike the unbounded trace log it never grows,
//!   so the live runtime keeps it on and dumps the last N protocol
//!   events per server when a differential test or stress run fails.
//! * [`ObsCore`] — the cluster-owned bundle: flight recorder, pipeline
//!   drain-batch distribution, and lease-validation-failure count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use deceit_net::NodeId;
use deceit_sim::SimTime;

use crate::trace_events::ProtocolEvent;

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` linear sub-buckets, bounding relative error at
/// `2^-(SUB_BITS+1)` ≈ 3%.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two group.
const SUB: usize = 1 << SUB_BITS;
/// Power-of-two groups above the exact range. Group `g` covers
/// `[2^(g+4), 2^(g+5))`, so 32 groups resolve values up to `2^36`
/// (~19 hours in microseconds); anything larger saturates into the
/// top bucket.
const GROUPS: usize = 32;
/// Total bucket count: 16 exact buckets for values 0..16, then
/// `GROUPS * SUB` log-linear buckets. At 8 bytes each the whole
/// histogram is ~4.3 KiB, allocated once.
pub const BUCKETS: usize = SUB + GROUPS * SUB;

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let group = msb - SUB_BITS as usize;
    let sub = ((v >> (msb - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
    (SUB + group * SUB + sub).min(BUCKETS - 1)
}

/// The representative (midpoint) value of a bucket, used when reading
/// percentiles back out.
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let group = (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u64;
    let msb = group + SUB_BITS as usize;
    let width = 1u64 << (msb - SUB_BITS as usize);
    (1u64 << msb) + sub * width + width / 2
}

/// A lock-free, fixed-footprint, log-bucketed histogram.
///
/// The record path is wait-free: one relaxed `fetch_add` into the
/// value's bucket plus count/sum/max tallies — the same discipline as
/// the runtime's atomic counters, cheap enough to sit on every request.
/// Reads ([`AtomicHistogram::counts`]) copy the buckets out and compute
/// percentiles from the copy, so a snapshot taken mid-traffic is
/// internally consistent per bucket (the totals race by at most the
/// in-flight samples, which interval arithmetic tolerates).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram (one fixed allocation).
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned copy of the current bucket counts.
    pub fn counts(&self) -> HistCounts {
        HistCounts {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max_hint: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: summary of everything recorded so far.
    pub fn summary(&self) -> HistSummary {
        self.counts().summary()
    }
}

/// An owned histogram snapshot: subtractable (for interval deltas) and
/// mergeable (for combining per-class or per-thread histograms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistCounts {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    /// Exact max for a from-zero snapshot; 0 after [`HistCounts::since`]
    /// (an interval max cannot be recovered, so the summary falls back
    /// to the top occupied bucket's representative).
    max_hint: u64,
}

impl HistCounts {
    /// An all-zero snapshot.
    pub fn zero() -> Self {
        HistCounts { buckets: vec![0; BUCKETS], count: 0, sum: 0, max_hint: 0 }
    }

    /// Samples in this snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The delta since an earlier snapshot of the same histogram:
    /// bucket-wise saturating subtraction, so a torn concurrent read can
    /// never underflow.
    pub fn since(&self, earlier: &HistCounts) -> HistCounts {
        HistCounts {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max_hint: 0,
        }
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistCounts) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max_hint = self.max_hint.max(other.max_hint);
    }

    /// The value at percentile `p` in `[0, 100]` (bucket representative;
    /// ≤ ~3% relative error), or 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(BUCKETS - 1)
    }

    /// Summary of this snapshot.
    pub fn summary(&self) -> HistSummary {
        let total: u64 = self.buckets.iter().sum();
        let top = self.buckets.iter().rposition(|&n| n > 0).map_or(0, bucket_value);
        HistSummary {
            count: total,
            mean: if total == 0 { 0.0 } else { self.sum as f64 / total as f64 },
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: if self.max_hint > 0 { self.max_hint } else { top },
        }
    }
}

/// A compact distribution summary read out of an [`AtomicHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples covered.
    pub count: u64,
    /// Arithmetic mean (exact: from the atomic sum, not the buckets).
    pub mean: f64,
    /// Median (bucket representative).
    pub p50: u64,
    /// 90th percentile (bucket representative).
    pub p90: u64,
    /// 99th percentile (bucket representative).
    pub p99: u64,
    /// Maximum (exact for from-zero snapshots, top-bucket representative
    /// for interval deltas).
    pub max: u64,
}

impl std::fmt::Display for HistSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Events retained per server by the flight recorder.
pub const FLIGHT_CAPACITY: usize = 256;

/// A bounded per-server ring buffer of timestamped protocol events.
///
/// Where the trace log records everything (and therefore stays off in
/// live hosting), the flight recorder keeps only the last
/// [`FLIGHT_CAPACITY`] events each server *acted in*, overwriting the
/// oldest. Recording takes the acting server's ring lock for a few
/// stores — short enough to stay on under full write load — and a
/// snapshot never observes a torn event because the entry is replaced
/// whole under that lock.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Vec<Mutex<EventRing>>,
}

#[derive(Debug, Default)]
struct EventRing {
    buf: Vec<(SimTime, ProtocolEvent)>,
    /// Write cursor: index the next event lands in once full.
    next: usize,
    /// Events ever recorded (so wraparound is observable).
    total: u64,
}

impl FlightRecorder {
    /// A recorder with one ring per server.
    pub fn new(n_servers: usize) -> Self {
        FlightRecorder { rings: (0..n_servers).map(|_| Mutex::new(EventRing::default())).collect() }
    }

    fn ring(&self, server: NodeId) -> std::sync::MutexGuard<'_, EventRing> {
        // lint: allow(lock-order): per-server flight-recorder ring, a telemetry leaf mutex held only to append/drain one ring
        self.rings[server.index()].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one event against the server that performed it.
    pub fn record(&self, server: NodeId, at: SimTime, ev: ProtocolEvent) {
        if server.index() >= self.rings.len() {
            return;
        }
        let mut ring = self.ring(server);
        if ring.buf.len() < FLIGHT_CAPACITY {
            ring.buf.push((at, ev));
        } else {
            let slot = ring.next;
            ring.buf[slot] = (at, ev);
        }
        ring.next = (ring.next + 1) % FLIGHT_CAPACITY;
        ring.total += 1;
    }

    /// Total events ever recorded for one server (including overwritten).
    pub fn total(&self, server: NodeId) -> u64 {
        self.ring(server).total
    }

    /// The retained events for one server, oldest first.
    pub fn events(&self, server: NodeId) -> Vec<(SimTime, ProtocolEvent)> {
        let ring = self.ring(server);
        if ring.buf.len() < FLIGHT_CAPACITY {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(FLIGHT_CAPACITY);
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// Number of servers this recorder tracks.
    pub fn servers(&self) -> usize {
        self.rings.len()
    }

    /// A human-readable dump of every server's retained events, newest
    /// last — what a failing differential test prints instead of a bare
    /// assert.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in 0..self.rings.len() {
            let id = NodeId(i as u32);
            let events = self.events(id);
            let total = self.total(id);
            let _ = writeln!(
                out,
                "server {i}: {} protocol events recorded, last {} retained",
                total,
                events.len()
            );
            for (at, ev) in events {
                let _ = writeln!(out, "  [{:>10}us] {ev:?}", at.as_micros());
            }
        }
        out
    }
}

/// The cluster-owned observability bundle: always on, independent of
/// the `trace`/`stats` config switches.
#[derive(Debug)]
pub struct ObsCore {
    /// Last-N protocol events per server.
    pub flight: FlightRecorder,
    /// Outbound-stream drain batch sizes (updates shipped per
    /// `PropagateStream` firing) — the pipeline's batching-window
    /// effectiveness in one distribution.
    pub drain_batch: AtomicHistogram,
    /// Serve-path execution time (microseconds) stamped by the NFS
    /// envelope around each handled request.
    pub serve_exec: AtomicHistogram,
    /// Read-lease validations that failed (version moved or lease
    /// revoked mid-copy) and pushed the read off the lock-free path.
    pub lease_validation_failures: AtomicU64,
    /// The replica-placement signal and activity counters: per-server
    /// forwarded-read access tables plus migration tallies. Lives here —
    /// not behind `stats` — because live hosting disables the stats
    /// registry and the migration signal must keep flowing.
    pub placement: crate::placement::PlacementCore,
}

impl ObsCore {
    /// A bundle for a cell of `n_servers`.
    pub fn new(n_servers: usize) -> Self {
        ObsCore {
            flight: FlightRecorder::new(n_servers),
            drain_batch: AtomicHistogram::new(),
            serve_exec: AtomicHistogram::new(),
            lease_validation_failures: AtomicU64::new(0),
            placement: crate::placement::PlacementCore::new(n_servers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SegmentId;

    #[test]
    fn bucket_boundaries_round_trip() {
        // Exact range: identity.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(v as usize), v);
        }
        // Every power-of-two boundary starts a fresh group, and the
        // representative stays within the bucket's ~6% width.
        for msb in 4..36usize {
            for &v in &[1u64 << msb, (1u64 << msb) + 1, (1u64 << (msb + 1)) - 1] {
                let idx = bucket_index(v);
                let rep = bucket_value(idx);
                let width = 1u64 << (msb - 4);
                assert!(
                    rep.abs_diff(v) <= width,
                    "value {v} bucket {idx} representative {rep} drifted past one bucket width"
                );
            }
        }
        // Adjacent values near a boundary never map to an earlier bucket.
        assert!(bucket_index(16) > bucket_index(15));
        assert!(bucket_index(32) > bucket_index(31));
    }

    #[test]
    fn saturation_at_top_bucket() {
        let h = AtomicHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 60);
        h.record(1u64 << 36); // first value past the resolved range
        let counts = h.counts();
        assert_eq!(counts.count(), 3);
        // All three land in the top bucket rather than panicking.
        assert_eq!(counts.buckets[BUCKETS - 1], 3);
        // Exact max survives via the atomic max.
        assert_eq!(counts.summary().max, u64::MAX);
        // An interval delta loses the hint and falls back to the top
        // bucket's representative.
        let delta = counts.since(&HistCounts::zero());
        assert_eq!(delta.summary().max, bucket_value(BUCKETS - 1));
    }

    #[test]
    fn percentiles_match_exact_histogram_shape() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        // ~3% relative error bound from SUB_BITS = 4.
        assert!((s.p50 as f64 - 500.0).abs() / 500.0 < 0.05, "p50 {}", s.p50);
        assert!((s.p90 as f64 - 900.0).abs() / 900.0 < 0.05, "p90 {}", s.p90);
        assert!((s.p99 as f64 - 990.0).abs() / 990.0 < 0.05, "p99 {}", s.p99);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9, "mean is exact via the atomic sum");
    }

    #[test]
    fn multithreaded_record_merges_deterministically() {
        // N threads record disjoint slices into their own histograms and
        // all into one shared histogram; the merged per-thread counts
        // must equal the shared histogram's counts exactly.
        let shared = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    let own = AtomicHistogram::new();
                    for i in 0..10_000u64 {
                        let v = t * 1_000 + (i * 7919) % 4096;
                        own.record(v);
                        shared.record(v);
                    }
                    own.counts()
                })
            })
            .collect();
        let mut merged = HistCounts::zero();
        for h in handles {
            merged.merge(&h.join().expect("recorder thread"));
        }
        assert_eq!(merged, shared.counts());
        assert_eq!(merged.count(), 40_000);
        assert_eq!(merged.summary(), shared.counts().summary());
    }

    #[test]
    fn interval_delta_isolates_new_samples() {
        let h = AtomicHistogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        let before = h.counts();
        for _ in 0..50 {
            h.record(1000);
        }
        let delta = h.counts().since(&before);
        assert_eq!(delta.count(), 50);
        let s = delta.summary();
        assert_eq!(s.count, 50);
        assert!(s.p50 > 900, "delta must only see the new 1000us samples, got {}", s.p50);
    }

    #[test]
    fn flight_recorder_wraps_without_tearing() {
        let fr = FlightRecorder::new(2);
        let s0 = NodeId(0);
        let n = FLIGHT_CAPACITY as u64 + 100;
        for i in 0..n {
            fr.record(
                s0,
                SimTime::from_micros(i),
                ProtocolEvent::MarkedStable { seg: SegmentId(i) },
            );
        }
        assert_eq!(fr.total(s0), n);
        let events = fr.events(s0);
        assert_eq!(events.len(), FLIGHT_CAPACITY, "ring retains exactly its capacity");
        // Oldest-first, contiguous, and ending at the newest event: the
        // wrap overwrote the oldest 100 without tearing any entry.
        for (j, (at, ev)) in events.iter().enumerate() {
            let expect = n - FLIGHT_CAPACITY as u64 + j as u64;
            assert_eq!(at.as_micros(), expect);
            assert_eq!(*ev, ProtocolEvent::MarkedStable { seg: SegmentId(expect) });
        }
        // The other server's ring is untouched.
        assert_eq!(fr.total(NodeId(1)), 0);
        assert!(fr.events(NodeId(1)).is_empty());
    }

    #[test]
    fn flight_recorder_dump_lists_servers() {
        let fr = FlightRecorder::new(2);
        fr.record(
            NodeId(1),
            SimTime::from_micros(42),
            ProtocolEvent::MarkedStable { seg: SegmentId(7) },
        );
        let dump = fr.dump();
        assert!(dump.contains("server 0: 0 protocol events"));
        assert!(dump.contains("server 1: 1 protocol events"));
        assert!(dump.contains("MarkedStable"));
    }
}
