//! Segment operations.
//!
//! §5.1: "The interface to the segment server consists of five normal
//! procedure calls: create, delete, read, write, and setparam. … Write
//! modifies a segment by replacing, appending, or truncating data in the
//! segment."

use bytes::Bytes;

use deceit_storage::SegmentData;

use crate::params::FileParams;
use crate::version::VersionPair;

/// One mutation of a segment, distributed to the file group as an update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Replace the entire contents ("files tend to be written … in their
    /// entirety", §2.3 — the common case).
    Replace(Vec<u8>),
    /// Replace bytes starting at an offset, extending as needed.
    WriteAt {
        /// Byte offset of the first written byte.
        offset: usize,
        /// The bytes to write.
        data: Vec<u8>,
    },
    /// Append at the current end of segment.
    Append(Vec<u8>),
    /// Truncate (or zero-extend) to an exact length.
    Truncate(usize),
    /// Replace the semantic parameters (the `setparam` call; distributed
    /// through the same ordered-update machinery so every replica agrees
    /// on the parameters in effect).
    SetParams(FileParams),
}

impl WriteOp {
    /// Convenience constructor for [`WriteOp::Replace`].
    pub fn replace(data: &[u8]) -> Self {
        WriteOp::Replace(data.to_vec())
    }

    /// Convenience constructor for [`WriteOp::Append`].
    pub fn append(data: &[u8]) -> Self {
        WriteOp::Append(data.to_vec())
    }

    /// Convenience constructor for [`WriteOp::WriteAt`].
    pub fn write_at(offset: usize, data: &[u8]) -> Self {
        WriteOp::WriteAt { offset, data: data.to_vec() }
    }

    /// Applies the mutation to a replica's contents and parameters.
    pub fn apply(&self, data: &mut SegmentData, params: &mut FileParams) {
        match self {
            WriteOp::Replace(bytes) => data.replace(bytes),
            WriteOp::WriteAt { offset, data: bytes } => data.write(*offset, bytes),
            WriteOp::Append(bytes) => data.append(bytes),
            WriteOp::Truncate(len) => data.truncate(*len),
            WriteOp::SetParams(p) => *params = *p,
        }
    }

    /// Payload size on the wire, for network accounting.
    pub fn wire_size(&self) -> usize {
        16 + match self {
            WriteOp::Replace(b) | WriteOp::Append(b) => b.len(),
            WriteOp::WriteAt { data, .. } => data.len(),
            WriteOp::Truncate(_) => 0,
            WriteOp::SetParams(_) => crate::params::PARAMS_WIRE_SIZE,
        }
    }

    /// Bytes written to local storage when applied (approximation used for
    /// disk-latency accounting).
    pub fn disk_size(&self) -> usize {
        self.wire_size()
    }
}

/// One update as shipped to the file group: the mutation plus the version
/// pair it produces. The new subversion number doubles as the total-order
/// sequence number within a major (§3.5: "v2 is incremented on every
/// update"), so replicas can apply updates in identical order regardless
/// of token movement (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    /// The version pair the segment carries after this update.
    pub new_version: VersionPair,
    /// The mutation itself.
    pub op: WriteOp,
}

/// The result of a read: data plus the version pair it was served at.
///
/// §5.1: "A read call not only returns data, but it also returns the
/// version pair associated with that data" — the foundation of the
/// optimistic concurrency mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadData {
    /// The bytes read.
    pub data: Bytes,
    /// Version pair of the replica served.
    pub version: VersionPair,
    /// Total length of the segment at serve time.
    pub segment_len: usize,
    /// Which server's replica satisfied the read (after any forwarding).
    pub served_by: deceit_net::NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (SegmentData, FileParams) {
        (SegmentData::new(), FileParams::default())
    }

    #[test]
    fn replace_apply() {
        let (mut d, mut p) = fresh();
        WriteOp::replace(b"abc").apply(&mut d, &mut p);
        assert_eq!(&d.contents()[..], b"abc");
        WriteOp::replace(b"z").apply(&mut d, &mut p);
        assert_eq!(&d.contents()[..], b"z");
    }

    #[test]
    fn write_at_and_append_apply() {
        let (mut d, mut p) = fresh();
        WriteOp::append(b"hello").apply(&mut d, &mut p);
        WriteOp::write_at(0, b"J").apply(&mut d, &mut p);
        assert_eq!(&d.contents()[..], b"Jello");
        WriteOp::Truncate(2).apply(&mut d, &mut p);
        assert_eq!(&d.contents()[..], b"Je");
    }

    #[test]
    fn set_params_applies_to_params_only() {
        let (mut d, mut p) = fresh();
        d.append(b"x");
        let newp = FileParams { min_replicas: 3, ..FileParams::default() };
        WriteOp::SetParams(newp).apply(&mut d, &mut p);
        assert_eq!(p.min_replicas, 3);
        assert_eq!(d.len(), 1, "data untouched");
    }

    #[test]
    fn wire_size_tracks_payload() {
        assert_eq!(WriteOp::replace(b"1234").wire_size(), 20);
        assert_eq!(WriteOp::Truncate(99).wire_size(), 16);
        assert!(WriteOp::SetParams(FileParams::default()).wire_size() > 16);
    }
}
