//! Error types for the segment server.

use std::fmt;

use deceit_net::NodeId;

use crate::server::SegmentId;
use crate::version::VersionPair;

/// Everything that can go wrong in a segment-server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeceitError {
    /// The segment does not exist (never created, deleted, or no replica
    /// reachable from the serving server).
    NoSuchSegment(SegmentId),
    /// The requested major version of the segment does not exist or is not
    /// reachable.
    NoSuchVersion(SegmentId, u64),
    /// The server handling the request is crashed (client should fail
    /// over).
    ServerDown(NodeId),
    /// No replica of the segment is reachable from the serving server.
    Unavailable(SegmentId),
    /// A write token could not be acquired or generated, e.g. availability
    /// "medium" without a reachable majority, or "low" with the token lost
    /// (§3.5, §4).
    WriteUnavailable(SegmentId),
    /// A conditional write found a different version pair than expected —
    /// the optimistic-concurrency conflict of §5.1 ("similar to a
    /// transaction which has been aborted").
    VersionConflict {
        /// Segment being written.
        segment: SegmentId,
        /// What the writer expected.
        expected: VersionPair,
        /// What the segment actually carried.
        actual: VersionPair,
    },
    /// The operation addressed a server outside the cluster.
    NoSuchServer(NodeId),
    /// A point-to-point exchange with a peer failed mid-operation (crash
    /// or partition between rounds).
    PeerUnreachable(NodeId),
    /// An administrative command was invalid (e.g. deleting the last
    /// replica, or targeting a server without one).
    InvalidCommand(String),
}

impl fmt::Display for DeceitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeceitError::NoSuchSegment(s) => write!(f, "no such segment {s}"),
            DeceitError::NoSuchVersion(s, v) => write!(f, "segment {s} has no version {v}"),
            DeceitError::ServerDown(n) => write!(f, "server {n} is down"),
            DeceitError::Unavailable(s) => write!(f, "no replica of {s} is reachable"),
            DeceitError::WriteUnavailable(s) => {
                write!(f, "segment {s} is not writable (token unavailable)")
            }
            DeceitError::VersionConflict { segment, expected, actual } => write!(
                f,
                "conditional write conflict on {segment}: expected {expected}, found {actual}"
            ),
            DeceitError::NoSuchServer(n) => write!(f, "no such server {n}"),
            DeceitError::PeerUnreachable(n) => write!(f, "peer {n} became unreachable"),
            DeceitError::InvalidCommand(m) => write!(f, "invalid command: {m}"),
        }
    }
}

impl std::error::Error for DeceitError {}

/// Convenience alias used across the crate.
pub type DeceitResult<T> = Result<T, DeceitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let seg = SegmentId(4);
        assert!(DeceitError::NoSuchSegment(seg).to_string().contains("seg4"));
        assert!(DeceitError::ServerDown(NodeId(2)).to_string().contains("n2"));
        let conflict = DeceitError::VersionConflict {
            segment: seg,
            expected: VersionPair { major: 0, sub: 1 },
            actual: VersionPair { major: 0, sub: 2 },
        };
        let s = conflict.to_string();
        assert!(s.contains("(0,1)") && s.contains("(0,2)"), "{s}");
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(DeceitError::Unavailable(SegmentId(1)));
        assert!(e.to_string().contains("seg1"));
    }
}
