//! Process state transfer.
//!
//! Joining a file group requires receiving the group's state (§3.2 calls
//! the join "an expensive operation"); generating a file replica streams
//! the file body over a blast connection (§3.1). Both are state transfers:
//! a sized payload moved point-to-point, off the broadcast path. This
//! module prices them against the simulated network.

use deceit_net::{BlastConfig, Network, NodeId};
use deceit_sim::SimDuration;

/// Outcome of a state transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Transfer completed in the given time.
    Done(SimDuration),
    /// Source and destination cannot communicate.
    Unreachable,
}

impl TransferOutcome {
    /// The elapsed time if the transfer completed.
    pub fn duration(self) -> Option<SimDuration> {
        match self {
            TransferOutcome::Done(d) => Some(d),
            TransferOutcome::Unreachable => None,
        }
    }
}

/// Streams `bytes` of state from `from` to `to` over a blast connection.
///
/// Costs one control message on the network (accounting) plus the modeled
/// streaming time; §3.1: "Non-blocking I/O and careful buffer management
/// allow the connection to run at high efficiency."
pub fn transfer_state(
    net: &Network,
    cfg: &BlastConfig,
    from: NodeId,
    to: NodeId,
    bytes: u64,
    tag: &'static str,
) -> TransferOutcome {
    match net.send(from, to, bytes as usize, tag) {
        deceit_net::Delivery::Delivered(one_way) => {
            TransferOutcome::Done(cfg.transfer_time(bytes, one_way))
        }
        deceit_net::Delivery::Unreachable => TransferOutcome::Unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn transfer_completes_and_scales() {
        let net = Network::fixed(SimDuration::from_millis(1), 1);
        let cfg = BlastConfig::ethernet_10mb();
        let small = transfer_state(&net, &cfg, n(0), n(1), 1 << 10, "xfer").duration().unwrap();
        let big = transfer_state(&net, &cfg, n(0), n(1), 1 << 24, "xfer").duration().unwrap();
        assert!(big > small * 100, "big {big} small {small}");
        assert_eq!(net.stats().tag_count("xfer"), 2);
    }

    #[test]
    fn unreachable_fails() {
        let mut net = Network::fixed(SimDuration::from_millis(1), 1);
        net.crash(n(1));
        let cfg = BlastConfig::default();
        assert_eq!(
            transfer_state(&net, &cfg, n(0), n(1), 1024, "xfer"),
            TransferOutcome::Unreachable
        );
    }
}
