//! An ISIS-like distributed programming substrate.
//!
//! Deceit delegates "all communication and process group management" to the
//! ISIS Distributed Programming Environment (§2.4). The features the paper
//! enumerates — and which this crate reimplements — are:
//!
//! * **process groups** with atomic membership change ([`group`]),
//! * **several group broadcast protocols** ([`bcast`] for communication
//!   rounds with first-k reply collection, [`cbcast`] for causal order via
//!   vector clocks, [`abcast`] for total order via a sequencer),
//! * **mechanisms for locating group members by group name** ([`group`],
//!   with the global-search cost charged by the caller per §3.2),
//! * **process state transfer** ([`xfer`]),
//! * **failure detection coordinated with communication** ([`failure`]):
//!   a machine is suspected exactly when a message to it goes unanswered.
//!
//! The crate is a mechanism library: it owns no event loop. The Deceit
//! cluster (in `deceit-core`) drives these pieces, the same way the Deceit
//! server process linked against the ISIS toolkit.

pub mod abcast;
pub mod bcast;
pub mod cbcast;
pub mod failure;
pub mod group;
pub mod vclock;
pub mod view_sync;
pub mod xfer;

pub use abcast::{OrderedReceiver, SequencedMsg, Sequencer};
pub use bcast::{broadcast_round, BcastOutcome};
pub use cbcast::{CausalMsg, CausalReceiver, CausalSender};
pub use failure::FailureDetector;
pub use group::{GroupId, GroupTable, View};
pub use vclock::VectorClock;
pub use view_sync::{ViewSyncBuffer, ViewedMsg};
