//! Failure detection coordinated with communication.
//!
//! §3 (footnote 7): "A replica at server b is available to a if a can
//! communicate with b. ISIS provides a clean notion of availability since
//! failure detection is coordinated with communication." There is no
//! separate heartbeat subsystem: a peer becomes *suspected* exactly when a
//! message to it goes unanswered, and *trusted* again exactly when
//! communication succeeds. [`FailureDetector`] keeps that per-observer
//! suspicion state and feeds the availability decisions in the token and
//! replica protocols.

use std::collections::BTreeSet;

use deceit_net::NodeId;

use crate::bcast::BcastOutcome;

/// One server's view of which peers are currently suspected.
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    suspected: BTreeSet<NodeId>,
    /// Cumulative suspicion events, for diagnostics.
    pub suspicion_events: u64,
}

impl FailureDetector {
    /// A detector that trusts everyone.
    pub fn new() -> Self {
        FailureDetector::default()
    }

    /// Records the outcome of a communication attempt with one peer.
    pub fn observe(&mut self, peer: NodeId, reachable: bool) {
        if reachable {
            self.suspected.remove(&peer);
        } else if self.suspected.insert(peer) {
            self.suspicion_events += 1;
        }
    }

    /// Folds a whole broadcast round into the suspicion state.
    pub fn observe_round(&mut self, outcome: &BcastOutcome) {
        for (n, _) in &outcome.replies {
            self.observe(*n, true);
        }
        for n in &outcome.unreachable {
            self.observe(*n, false);
        }
    }

    /// Whether `peer` is currently suspected of having failed.
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.suspected.contains(&peer)
    }

    /// Currently suspected peers.
    pub fn suspected(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.suspected.iter().copied()
    }

    /// Filters `peers` down to the ones currently trusted.
    pub fn trusted_subset(&self, peers: impl IntoIterator<Item = NodeId>) -> Vec<NodeId> {
        peers.into_iter().filter(|p| !self.is_suspected(*p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deceit_sim::SimDuration;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn suspicion_follows_communication() {
        let mut fd = FailureDetector::new();
        assert!(!fd.is_suspected(n(1)));
        fd.observe(n(1), false);
        assert!(fd.is_suspected(n(1)));
        fd.observe(n(1), true);
        assert!(!fd.is_suspected(n(1)));
        assert_eq!(fd.suspicion_events, 1);
    }

    #[test]
    fn repeat_suspicion_counts_once() {
        let mut fd = FailureDetector::new();
        fd.observe(n(1), false);
        fd.observe(n(1), false);
        assert_eq!(fd.suspicion_events, 1);
    }

    #[test]
    fn observe_round_folds_outcome() {
        let mut fd = FailureDetector::new();
        let outcome = BcastOutcome {
            replies: vec![(n(1), SimDuration::from_micros(5))],
            unreachable: vec![n(2), n(3)],
        };
        fd.observe_round(&outcome);
        assert!(!fd.is_suspected(n(1)));
        assert!(fd.is_suspected(n(2)));
        assert!(fd.is_suspected(n(3)));
        assert_eq!(fd.suspected().collect::<Vec<_>>(), vec![n(2), n(3)]);
        assert_eq!(fd.trusted_subset([n(1), n(2), n(3)]), vec![n(1)]);
    }
}
