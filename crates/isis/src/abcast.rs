//! ABCAST: totally ordered broadcast via a sequencer.
//!
//! §3.3: "It is necessary for correctness that the updates arrive in
//! identical order at all servers regardless of token movement." Deceit
//! achieves this the way ISIS's token-site ABCAST does: whoever holds the
//! token stamps each update with the group's next sequence number, and
//! every member delivers strictly in sequence-number order, holding back
//! gaps. Because the sequence counter travels with the token (it lives in
//! the group, not the holder), the order is preserved across token passes.

use std::collections::BTreeMap;

/// Sequencer state: the next sequence number to stamp.
///
/// In Deceit this travels with the write token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sequencer {
    next: u64,
}

impl Sequencer {
    /// A sequencer starting at 0.
    pub fn new() -> Self {
        Sequencer::default()
    }

    /// Resumes from a known next value (token handed over / recovered).
    pub fn resume_at(next: u64) -> Self {
        Sequencer { next }
    }

    /// Stamps a payload with the next sequence number.
    pub fn stamp<T>(&mut self, payload: T) -> SequencedMsg<T> {
        let seq = self.next;
        self.next += 1;
        SequencedMsg { seq, payload }
    }

    /// The sequence number the next stamp will use.
    pub fn next_seq(&self) -> u64 {
        self.next
    }
}

/// A payload stamped with its total-order position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencedMsg<T> {
    /// Position in the group's total order.
    pub seq: u64,
    /// Application payload.
    pub payload: T,
}

/// Receiver-side reordering buffer: delivers strictly in sequence order.
#[derive(Debug, Clone, Default)]
pub struct OrderedReceiver<T> {
    next_expected: u64,
    held: BTreeMap<u64, T>,
    delivered: u64,
}

impl<T> OrderedReceiver<T> {
    /// A receiver expecting sequence number 0 first.
    pub fn new() -> Self {
        OrderedReceiver { next_expected: 0, held: BTreeMap::new(), delivered: 0 }
    }

    /// A receiver that has already (logically) delivered everything below
    /// `next` — used after state transfer, where the joiner's initial state
    /// embeds all earlier updates.
    pub fn starting_at(next: u64) -> Self {
        OrderedReceiver { next_expected: next, held: BTreeMap::new(), delivered: 0 }
    }

    /// Ingests one stamped message; returns newly deliverable payloads in
    /// sequence order. Duplicate or already-delivered sequence numbers are
    /// ignored (ISIS deduplicates retransmissions).
    pub fn receive(&mut self, msg: SequencedMsg<T>) -> Vec<(u64, T)> {
        if msg.seq >= self.next_expected {
            self.held.entry(msg.seq).or_insert(msg.payload);
        }
        let mut out = Vec::new();
        while let Some(payload) = self.held.remove(&self.next_expected) {
            out.push((self.next_expected, payload));
            self.next_expected += 1;
            self.delivered += 1;
        }
        out
    }

    /// The sequence number this receiver will deliver next.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Messages held back waiting for a gap to fill.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Total payloads delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_consecutive() {
        let mut s = Sequencer::new();
        assert_eq!(s.stamp("a").seq, 0);
        assert_eq!(s.stamp("b").seq, 1);
        assert_eq!(s.next_seq(), 2);
    }

    #[test]
    fn in_order_delivery() {
        let mut s = Sequencer::new();
        let mut r = OrderedReceiver::new();
        for i in 0..5 {
            let out = r.receive(s.stamp(i));
            assert_eq!(out, vec![(i as u64, i)]);
        }
        assert_eq!(r.delivered_count(), 5);
    }

    #[test]
    fn gaps_are_held_back() {
        let mut r = OrderedReceiver::new();
        assert!(r.receive(SequencedMsg { seq: 2, payload: "c" }).is_empty());
        assert!(r.receive(SequencedMsg { seq: 1, payload: "b" }).is_empty());
        assert_eq!(r.held_count(), 2);
        let out = r.receive(SequencedMsg { seq: 0, payload: "a" });
        assert_eq!(
            out,
            vec![(0, "a"), (1, "b"), (2, "c")],
            "filling the gap releases everything in order"
        );
    }

    #[test]
    fn duplicates_ignored() {
        let mut r = OrderedReceiver::new();
        assert_eq!(r.receive(SequencedMsg { seq: 0, payload: 1 }).len(), 1);
        assert!(r.receive(SequencedMsg { seq: 0, payload: 1 }).is_empty());
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn sequencer_survives_token_movement() {
        // Token moves from holder A to holder B: B resumes the counter.
        let mut a = Sequencer::new();
        let m0 = a.stamp("from-a-0");
        let m1 = a.stamp("from-a-1");
        let mut b = Sequencer::resume_at(a.next_seq());
        let m2 = b.stamp("from-b-2");

        // Two receivers, different arrival orders, same delivery order.
        fn deliver(msgs: Vec<SequencedMsg<&'static str>>) -> Vec<&'static str> {
            let mut r = OrderedReceiver::new();
            let mut seen = Vec::new();
            for m in msgs {
                for (_, p) in r.receive(m) {
                    seen.push(p);
                }
            }
            seen
        }
        let d1 = deliver(vec![m0.clone(), m1.clone(), m2.clone()]);
        let d2 = deliver(vec![m2, m0, m1]);
        assert_eq!(d1, d2);
        assert_eq!(d1, vec!["from-a-0", "from-a-1", "from-b-2"]);
    }

    #[test]
    fn state_transfer_skips_history() {
        let mut r: OrderedReceiver<&str> = OrderedReceiver::starting_at(10);
        // An old retransmission is ignored outright.
        assert!(r.receive(SequencedMsg { seq: 3, payload: "old" }).is_empty());
        assert_eq!(r.held_count(), 0);
        let out = r.receive(SequencedMsg { seq: 10, payload: "new" });
        assert_eq!(out, vec![(10, "new")]);
    }
}
