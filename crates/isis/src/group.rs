//! Process groups with atomic membership change.
//!
//! §3.2: "For any file, f, there is an explicit process group of servers
//! that need current information about f … Deceit represents each file
//! group with an ISIS process group." Membership changes are *view
//! synchronous*: each change produces a new numbered view, and every
//! broadcast is associated with the view in which it was sent, so members
//! agree on which messages preceded which membership change.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use deceit_net::NodeId;

/// Identity of one process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u64);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One numbered membership view of a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// The group this view belongs to.
    pub group: GroupId,
    /// Monotonically increasing view number; bumped by every join/leave.
    pub view_id: u64,
    /// Current members.
    pub members: BTreeSet<NodeId>,
}

impl View {
    /// Whether `node` is a member in this view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[derive(Debug, Clone)]
struct GroupMeta {
    name: String,
    view: View,
    /// ABCAST sequencer state for this group (next sequence number).
    next_seq: u64,
}

/// Errors from group operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The group id is not (or no longer) registered.
    NoSuchGroup(GroupId),
    /// A group with this name already exists.
    NameTaken(String),
    /// The node is already a member.
    AlreadyMember(GroupId, NodeId),
    /// The node is not a member.
    NotMember(GroupId, NodeId),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::NoSuchGroup(g) => write!(f, "no such group {g}"),
            GroupError::NameTaken(n) => write!(f, "group name {n:?} already taken"),
            GroupError::AlreadyMember(g, n) => write!(f, "{n} already a member of {g}"),
            GroupError::NotMember(g, n) => write!(f, "{n} not a member of {g}"),
        }
    }
}

impl std::error::Error for GroupError {}

/// The group-membership service.
///
/// In real ISIS this state is itself replicated; here it is the
/// authoritative copy held by the simulation, with the *costs* of
/// membership operations (global search, state transfer) charged explicitly
/// by the caller, because those costs are what §3.2 and §7 analyze
/// ("Group joins are expensive", "ISIS does not efficiently support more
/// than 100-1000 process groups").
/// Internally synchronized: every operation takes `&self`, so protocol
/// code running under a shared lock (the concurrent host's sharded
/// mutation path) can look up, join, and create groups without exclusive
/// access to the directory. [`GroupTable::view`] returns an owned
/// snapshot; view-synchronous semantics come from the atomicity of each
/// membership change, not from holding a borrow open.
#[derive(Debug, Default)]
pub struct GroupTable {
    inner: std::sync::RwLock<TableInner>,
}

#[derive(Debug, Default)]
struct TableInner {
    groups: BTreeMap<GroupId, GroupMeta>,
    by_name: BTreeMap<String, GroupId>,
    next_id: u64,
    view_changes: u64,
    peak_groups: usize,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, TableInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, TableInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a group with a unique name and one initial member.
    pub fn create(&self, name: &str, creator: NodeId) -> Result<GroupId, GroupError> {
        let mut inner = self.write();
        if inner.by_name.contains_key(name) {
            return Err(GroupError::NameTaken(name.to_string()));
        }
        let id = GroupId(inner.next_id);
        inner.next_id += 1;
        let mut members = BTreeSet::new();
        members.insert(creator);
        inner.groups.insert(
            id,
            GroupMeta {
                name: name.to_string(),
                view: View { group: id, view_id: 1, members },
                next_seq: 0,
            },
        );
        inner.by_name.insert(name.to_string(), id);
        inner.view_changes += 1;
        inner.peak_groups = inner.peak_groups.max(inner.groups.len());
        Ok(id)
    }

    /// Looks up a group by name (the "locating group members by group name"
    /// primitive; the caller charges the search cost).
    pub fn lookup(&self, name: &str) -> Option<GroupId> {
        self.read().by_name.get(name).copied()
    }

    /// The current view of a group (an owned snapshot).
    pub fn view(&self, id: GroupId) -> Result<View, GroupError> {
        self.read().groups.get(&id).map(|g| g.view.clone()).ok_or(GroupError::NoSuchGroup(id))
    }

    /// Whether the group is (still) registered — the clone-free liveness
    /// probe hot paths use instead of [`GroupTable::view`].
    pub fn exists(&self, id: GroupId) -> bool {
        self.read().groups.contains_key(&id)
    }

    /// Whether `node` is a member of `id` (false if the group is gone) —
    /// clone-free.
    pub fn is_member(&self, id: GroupId, node: NodeId) -> bool {
        self.read().groups.get(&id).map(|g| g.view.contains(node)).unwrap_or(false)
    }

    /// The current members of `id` as a plain vector (ascending), or
    /// `None` if the group is gone. One allocation, no set clone.
    pub fn members_vec(&self, id: GroupId) -> Option<Vec<NodeId>> {
        self.read().groups.get(&id).map(|g| g.view.members.iter().copied().collect())
    }

    /// The current member count of `id` (0 if the group is gone) —
    /// clone-free, allocation-free.
    pub fn member_count(&self, id: GroupId) -> usize {
        self.read().groups.get(&id).map(|g| g.view.members.len()).unwrap_or(0)
    }

    /// Whether any current member of `id` satisfies `pred`, or `None`
    /// if the group is gone — the allocation-free membership scan for
    /// read hot paths that would otherwise pay a
    /// [`GroupTable::members_vec`] per request. `pred` runs under the
    /// table's read lock, so it must not call back into this table.
    pub fn any_member(&self, id: GroupId, mut pred: impl FnMut(NodeId) -> bool) -> Option<bool> {
        self.read().groups.get(&id).map(|g| g.view.members.iter().any(|&m| pred(m)))
    }

    /// Looks a group up by name and returns its members in one lock
    /// acquisition — the common "who needs this broadcast" query.
    pub fn members_by_name(&self, name: &str) -> Option<(GroupId, Vec<NodeId>)> {
        let inner = self.read();
        let id = *inner.by_name.get(name)?;
        let g = inner.groups.get(&id)?;
        Some((id, g.view.members.iter().copied().collect()))
    }

    /// The group's registered name.
    pub fn name(&self, id: GroupId) -> Result<String, GroupError> {
        self.read().groups.get(&id).map(|g| g.name.clone()).ok_or(GroupError::NoSuchGroup(id))
    }

    /// Adds a member, producing a new view (atomic membership change).
    pub fn join(&self, id: GroupId, node: NodeId) -> Result<View, GroupError> {
        let mut inner = self.write();
        let meta = inner.groups.get_mut(&id).ok_or(GroupError::NoSuchGroup(id))?;
        if !meta.view.members.insert(node) {
            return Err(GroupError::AlreadyMember(id, node));
        }
        meta.view.view_id += 1;
        let view = meta.view.clone();
        inner.view_changes += 1;
        Ok(view)
    }

    /// Removes a member, producing a new view. Deletes the group when the
    /// last member leaves (Deceit "will be more careful with generating and
    /// deleting process groups", §5.4).
    pub fn leave(&self, id: GroupId, node: NodeId) -> Result<View, GroupError> {
        let mut inner = self.write();
        let meta = inner.groups.get_mut(&id).ok_or(GroupError::NoSuchGroup(id))?;
        if !meta.view.members.remove(&node) {
            return Err(GroupError::NotMember(id, node));
        }
        meta.view.view_id += 1;
        let view = meta.view.clone();
        let name = meta.name.clone();
        inner.view_changes += 1;
        if view.members.is_empty() {
            inner.groups.remove(&id);
            inner.by_name.remove(&name);
        }
        Ok(view)
    }

    /// Allocates the next ABCAST sequence number for the group.
    pub fn next_seq(&self, id: GroupId) -> Result<u64, GroupError> {
        let mut inner = self.write();
        let meta = inner.groups.get_mut(&id).ok_or(GroupError::NoSuchGroup(id))?;
        let s = meta.next_seq;
        meta.next_seq += 1;
        Ok(s)
    }

    /// Number of currently live groups.
    pub fn len(&self) -> usize {
        self.read().groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.read().groups.is_empty()
    }

    /// Total view changes performed (joins + leaves), for the scalability
    /// experiments.
    pub fn view_changes(&self) -> u64 {
        self.read().view_changes
    }

    /// High-water mark of simultaneously live groups — the resource the
    /// paper calls out as scarce in ISIS (§5.4).
    pub fn peak_groups(&self) -> usize {
        self.read().peak_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn create_lookup_view() {
        let t = GroupTable::new();
        let g = t.create("file:42", n(0)).unwrap();
        assert_eq!(t.lookup("file:42"), Some(g));
        assert_eq!(t.lookup("nope"), None);
        let v = t.view(g).unwrap();
        assert_eq!(v.view_id, 1);
        assert!(v.contains(n(0)));
        assert_eq!(v.len(), 1);
        assert_eq!(t.name(g).unwrap(), "file:42");
    }

    #[test]
    fn duplicate_name_rejected() {
        let t = GroupTable::new();
        t.create("g", n(0)).unwrap();
        assert_eq!(t.create("g", n(1)), Err(GroupError::NameTaken("g".into())));
    }

    #[test]
    fn join_and_leave_bump_view() {
        let t = GroupTable::new();
        let g = t.create("g", n(0)).unwrap();
        let v2 = t.join(g, n(1)).unwrap();
        assert_eq!(v2.view_id, 2);
        assert_eq!(v2.len(), 2);
        assert_eq!(t.join(g, n(1)), Err(GroupError::AlreadyMember(g, n(1))));
        let v3 = t.leave(g, n(0)).unwrap();
        assert_eq!(v3.view_id, 3);
        assert!(!v3.contains(n(0)));
        assert_eq!(t.leave(g, n(0)), Err(GroupError::NotMember(g, n(0))));
        // Create + successful join + successful leave; rejected ops do not
        // change the view.
        assert_eq!(t.view_changes(), 3);
    }

    #[test]
    fn group_deleted_when_empty() {
        let t = GroupTable::new();
        let g = t.create("g", n(0)).unwrap();
        t.leave(g, n(0)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.lookup("g"), None);
        assert_eq!(t.view(g), Err(GroupError::NoSuchGroup(g)));
        // The name becomes reusable.
        t.create("g", n(1)).unwrap();
    }

    #[test]
    fn sequencer_is_per_group() {
        let t = GroupTable::new();
        let a = t.create("a", n(0)).unwrap();
        let b = t.create("b", n(0)).unwrap();
        assert_eq!(t.next_seq(a).unwrap(), 0);
        assert_eq!(t.next_seq(a).unwrap(), 1);
        assert_eq!(t.next_seq(b).unwrap(), 0);
    }

    #[test]
    fn peak_groups_tracks_high_water() {
        let t = GroupTable::new();
        let a = t.create("a", n(0)).unwrap();
        let _b = t.create("b", n(0)).unwrap();
        t.leave(a, n(0)).unwrap();
        t.create("c", n(0)).unwrap();
        assert_eq!(t.peak_groups(), 2);
    }
}
