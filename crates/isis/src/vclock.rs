//! Vector clocks.
//!
//! ISIS's CBCAST tracks causality with vector timestamps; Deceit inherits
//! the mechanism for any traffic that needs causal (but not total) order,
//! and the paper's "Causality" file parameter discussion (§1) builds on it.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use deceit_net::NodeId;

/// A map-based vector clock over machine ids.
///
/// Missing entries are implicitly zero, so clocks over different member
/// sets compare correctly as groups grow.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    counts: BTreeMap<NodeId, u64>,
}

/// The causal relationship between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// The clocks are identical.
    Equal,
    /// Left strictly happens-before right.
    Before,
    /// Right strictly happens-before left.
    After,
    /// Neither dominates: concurrent events.
    Concurrent,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// This node's component.
    pub fn get(&self, node: NodeId) -> u64 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// Increments this node's component, returning the new value.
    pub fn tick(&mut self, node: NodeId) -> u64 {
        let slot = self.counts.entry(node).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Sets a component explicitly (used when replaying logs).
    pub fn set(&mut self, node: NodeId, value: u64) {
        if value == 0 {
            self.counts.remove(&node);
        } else {
            self.counts.insert(node, value);
        }
    }

    /// Componentwise maximum with `other`.
    pub fn merge(&mut self, other: &VectorClock) {
        for (&node, &v) in &other.counts {
            let slot = self.counts.entry(node).or_insert(0);
            *slot = (*slot).max(v);
        }
    }

    /// Compares two clocks for causal order.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        let mut less = false;
        let mut greater = false;
        let keys: std::collections::BTreeSet<NodeId> =
            self.counts.keys().chain(other.counts.keys()).copied().collect();
        for k in keys {
            match self.get(k).cmp(&other.get(k)) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (true, true) => Causality::Concurrent,
        }
    }

    /// Whether `self` causally precedes `other` (strictly).
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.compare(other) == Causality::Before
    }

    /// Whether neither clock dominates.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.compare(other) == Causality::Concurrent
    }

    /// CBCAST deliverability: can a message stamped `msg` from `sender` be
    /// delivered at a process whose clock is `self`?
    ///
    /// Requires `msg[sender] == self[sender] + 1` (next from that sender)
    /// and `msg[k] <= self[k]` for every other `k` (all causal
    /// prerequisites already delivered).
    pub fn can_deliver(&self, sender: NodeId, msg: &VectorClock) -> bool {
        if msg.get(sender) != self.get(sender) + 1 {
            return false;
        }
        msg.counts.iter().all(|(&k, &v)| k == sender || v <= self.get(k))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (node, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{node}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(n(0)), 0);
        assert_eq!(vc.tick(n(0)), 1);
        assert_eq!(vc.tick(n(0)), 2);
        assert_eq!(vc.get(n(0)), 2);
        assert_eq!(vc.get(n(1)), 0);
    }

    #[test]
    fn compare_orders() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        assert_eq!(a.compare(&b), Causality::Equal);
        a.tick(n(0));
        assert_eq!(a.compare(&b), Causality::After);
        assert_eq!(b.compare(&a), Causality::Before);
        b.tick(n(1));
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorClock::new();
        a.set(n(0), 3);
        a.set(n(1), 1);
        let mut b = VectorClock::new();
        b.set(n(1), 5);
        a.merge(&b);
        assert_eq!(a.get(n(0)), 3);
        assert_eq!(a.get(n(1)), 5);
        assert!(b.happens_before(&a));
    }

    #[test]
    fn deliverability_rule() {
        // Receiver has seen 2 messages from n0, none from n1.
        let mut recv = VectorClock::new();
        recv.set(n(0), 2);

        // Next message from n0 (3rd) is deliverable.
        let mut m = VectorClock::new();
        m.set(n(0), 3);
        assert!(recv.can_deliver(n(0), &m));

        // A gap (4th before 3rd) is not.
        let mut gap = VectorClock::new();
        gap.set(n(0), 4);
        assert!(!recv.can_deliver(n(0), &gap));

        // A message from n1 that causally depends on an unseen n1 msg: no.
        let mut dep = VectorClock::new();
        dep.set(n(1), 2);
        assert!(!recv.can_deliver(n(1), &dep));

        // First from n1 with a dependency on n0's seen messages: yes.
        let mut ok = VectorClock::new();
        ok.set(n(1), 1);
        ok.set(n(0), 2);
        assert!(recv.can_deliver(n(1), &ok));

        // Same but depending on an unseen n0 message: no.
        let mut notyet = VectorClock::new();
        notyet.set(n(1), 1);
        notyet.set(n(0), 3);
        assert!(!recv.can_deliver(n(1), &notyet));
    }

    #[test]
    fn set_zero_removes_entry() {
        let mut vc = VectorClock::new();
        vc.set(n(0), 2);
        vc.set(n(0), 0);
        assert_eq!(vc, VectorClock::new());
    }

    #[test]
    fn display_is_compact() {
        let mut vc = VectorClock::new();
        vc.set(n(1), 2);
        vc.set(n(3), 1);
        assert_eq!(vc.to_string(), "{n1:2, n3:1}");
    }
}
