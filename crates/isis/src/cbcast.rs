//! CBCAST: causally ordered broadcast.
//!
//! One of the "several group broadcast protocols" ISIS provides (§2.4).
//! Messages carry vector timestamps; a receiver holds back any message
//! whose causal predecessors have not yet been delivered. Deceit's design
//! discussion of the *causality* file parameter (§1 — "a run-time debugger
//! may require that an executable file and its source file are consistent")
//! rests on this primitive.

use deceit_net::NodeId;

use crate::vclock::VectorClock;

/// A broadcast message stamped with its causal context.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalMsg<T> {
    /// Originating process.
    pub sender: NodeId,
    /// The sender's vector clock *after* ticking for this send.
    pub vc: VectorClock,
    /// Application payload.
    pub payload: T,
}

/// Sender-side state for CBCAST.
#[derive(Debug, Clone)]
pub struct CausalSender {
    id: NodeId,
    vc: VectorClock,
}

impl CausalSender {
    /// Creates a sender for process `id`.
    pub fn new(id: NodeId) -> Self {
        CausalSender { id, vc: VectorClock::new() }
    }

    /// Stamps a payload for broadcast, advancing the local clock.
    pub fn send<T>(&mut self, payload: T) -> CausalMsg<T> {
        self.vc.tick(self.id);
        CausalMsg { sender: self.id, vc: self.vc.clone(), payload }
    }

    /// Incorporates a delivered message into the causal context, so that
    /// later sends depend on it.
    pub fn deliver<T>(&mut self, msg: &CausalMsg<T>) {
        self.vc.merge(&msg.vc);
    }

    /// Current causal context.
    pub fn clock(&self) -> &VectorClock {
        &self.vc
    }
}

/// Receiver-side delivery queue for CBCAST.
///
/// `receive` accepts messages in any arrival order and returns the ones
/// that became deliverable, in causal order. Held-back messages are
/// retried whenever a delivery unblocks them.
#[derive(Debug, Clone, Default)]
pub struct CausalReceiver<T> {
    vc: VectorClock,
    held: Vec<CausalMsg<T>>,
    delivered: u64,
}

impl<T: Clone> CausalReceiver<T> {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        CausalReceiver { vc: VectorClock::new(), held: Vec::new(), delivered: 0 }
    }

    /// Ingests one message; returns every message (including possibly this
    /// one and previously held ones) that became deliverable, in order.
    pub fn receive(&mut self, msg: CausalMsg<T>) -> Vec<CausalMsg<T>> {
        self.held.push(msg);
        let mut out = Vec::new();
        while let Some(pos) = self.held.iter().position(|m| self.vc.can_deliver(m.sender, &m.vc)) {
            let m = self.held.remove(pos);
            self.vc.merge(&m.vc);
            self.delivered += 1;
            out.push(m);
        }
        out
    }

    /// Messages received but not yet deliverable.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Total messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// The receiver's causal clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut s = CausalSender::new(n(0));
        let mut r = CausalReceiver::new();
        let m1 = s.send("a");
        let m2 = s.send("b");
        assert_eq!(r.receive(m1).len(), 1);
        assert_eq!(r.receive(m2).len(), 1);
        assert_eq!(r.delivered_count(), 2);
        assert_eq!(r.held_count(), 0);
    }

    #[test]
    fn gap_holds_back_until_filled() {
        let mut s = CausalSender::new(n(0));
        let mut r = CausalReceiver::new();
        let m1 = s.send(1);
        let m2 = s.send(2);
        let m3 = s.send(3);
        // Arrive out of order: 3, 1, 2.
        assert!(r.receive(m3).is_empty());
        assert_eq!(r.held_count(), 1);
        let d1: Vec<i32> = r.receive(m1).into_iter().map(|m| m.payload).collect();
        assert_eq!(d1, vec![1]);
        let d2: Vec<i32> = r.receive(m2).into_iter().map(|m| m.payload).collect();
        assert_eq!(d2, vec![2, 3], "delivery unblocks the held message");
    }

    #[test]
    fn cross_sender_causality_respected() {
        // n0 sends a; n1 delivers a then sends b (b causally after a).
        let mut s0 = CausalSender::new(n(0));
        let mut s1 = CausalSender::new(n(1));
        let a = s0.send("a");
        s1.deliver(&a);
        let b = s1.send("b");

        // A third process receives b before a: b must be held.
        let mut r = CausalReceiver::new();
        assert!(r.receive(b.clone()).is_empty());
        let delivered: Vec<&str> = r.receive(a.clone()).into_iter().map(|m| m.payload).collect();
        assert_eq!(delivered, vec!["a", "b"]);
    }

    #[test]
    fn concurrent_messages_deliver_in_any_arrival_order() {
        let mut s0 = CausalSender::new(n(0));
        let mut s1 = CausalSender::new(n(1));
        let a = s0.send("a");
        let b = s1.send("b"); // concurrent with a
        let mut r = CausalReceiver::new();
        assert_eq!(r.receive(b).len(), 1);
        assert_eq!(r.receive(a).len(), 1);
    }

    #[test]
    fn sender_clock_advances() {
        let mut s = CausalSender::new(n(0));
        let m = s.send(());
        assert_eq!(m.vc.get(n(0)), 1);
        assert_eq!(s.clock().get(n(0)), 1);
    }
}
