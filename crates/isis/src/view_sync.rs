//! View-synchronous delivery.
//!
//! The heart of ISIS's virtual synchrony (§2.4: "atomic group membership
//! change"): every broadcast is delivered in the same membership *view* at
//! every surviving member, so all members agree on exactly which messages
//! preceded each membership change. Before a new view is installed, the
//! members of the old view *flush*: they stop delivering new messages from
//! the old view and exchange any messages some members have and others
//! lack.
//!
//! [`ViewSyncBuffer`] implements the member-side machinery: messages are
//! tagged with the view they were sent in; messages from future views are
//! held back until that view is installed; a flush drains the current
//! view. The Deceit cluster uses this discipline implicitly (its
//! synchronous broadcasts deliver within one view); the module makes the
//! guarantee independently testable and reusable.

use std::collections::BTreeMap;

/// A message tagged with the view it was sent in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewedMsg<T> {
    /// View id at the sender when it broadcast.
    pub view_id: u64,
    /// Payload.
    pub payload: T,
}

/// One member's view-synchronous delivery buffer.
#[derive(Debug, Clone)]
pub struct ViewSyncBuffer<T> {
    current_view: u64,
    /// Messages from views not yet installed, keyed by view.
    held: BTreeMap<u64, Vec<T>>,
    delivered_in_view: u64,
    flushed: bool,
}

impl<T> ViewSyncBuffer<T> {
    /// A buffer starting in view `view_id`.
    pub fn new(view_id: u64) -> Self {
        ViewSyncBuffer {
            current_view: view_id,
            held: BTreeMap::new(),
            delivered_in_view: 0,
            flushed: false,
        }
    }

    /// The installed view.
    pub fn view(&self) -> u64 {
        self.current_view
    }

    /// Messages delivered in the current view so far.
    pub fn delivered_in_view(&self) -> u64 {
        self.delivered_in_view
    }

    /// Ingests one message. Returns the payloads now deliverable:
    ///
    /// * current-view messages deliver immediately (unless the view is
    ///   already flushing — then they are *lost to this member*, which is
    ///   allowed: the sender will see it missing from the flush and the
    ///   message counts as not delivered in the old view);
    /// * future-view messages are held until that view is installed;
    /// * old-view messages are discarded (their view has flushed; virtual
    ///   synchrony forbids late delivery).
    pub fn receive(&mut self, msg: ViewedMsg<T>) -> Vec<T> {
        if msg.view_id == self.current_view && !self.flushed {
            self.delivered_in_view += 1;
            return vec![msg.payload];
        }
        if msg.view_id > self.current_view {
            self.held.entry(msg.view_id).or_default().push(msg.payload);
        }
        Vec::new()
    }

    /// Flushes the current view: no further old-view message will ever be
    /// delivered. Returns the number delivered in the closed view.
    pub fn flush(&mut self) -> u64 {
        self.flushed = true;
        self.delivered_in_view
    }

    /// Installs a new view (must be greater than the current one) and
    /// releases any messages that were sent in it, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `view_id` does not increase — view installation is
    /// totally ordered by GBCAST.
    pub fn install_view(&mut self, view_id: u64) -> Vec<T> {
        assert!(view_id > self.current_view, "views must advance");
        // Drop anything from views we skipped past (their members flushed
        // without us; those messages are not ours to deliver).
        let keep: Vec<u64> = self.held.keys().copied().filter(|&v| v >= view_id).collect();
        let mut held = std::mem::take(&mut self.held);
        let released = held.remove(&view_id).unwrap_or_default();
        for v in keep {
            if v > view_id {
                if let Some(msgs) = held.remove(&v) {
                    self.held.insert(v, msgs);
                }
            }
        }
        self.current_view = view_id;
        self.flushed = false;
        self.delivered_in_view = released.len() as u64;
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(view_id: u64, payload: &'static str) -> ViewedMsg<&'static str> {
        ViewedMsg { view_id, payload }
    }

    #[test]
    fn current_view_delivers_immediately() {
        let mut b = ViewSyncBuffer::new(1);
        assert_eq!(b.receive(m(1, "a")), vec!["a"]);
        assert_eq!(b.delivered_in_view(), 1);
    }

    #[test]
    fn future_view_held_until_installed() {
        let mut b = ViewSyncBuffer::new(1);
        assert!(b.receive(m(2, "early")).is_empty());
        assert_eq!(b.receive(m(1, "now")), vec!["now"]);
        b.flush();
        let released = b.install_view(2);
        assert_eq!(released, vec!["early"]);
        assert_eq!(b.view(), 2);
    }

    #[test]
    fn old_view_messages_never_deliver_late() {
        let mut b = ViewSyncBuffer::new(1);
        b.flush();
        b.install_view(2);
        // A straggler from view 1 arrives after the view change: virtual
        // synchrony forbids delivering it.
        assert!(b.receive(m(1, "late")).is_empty());
    }

    #[test]
    fn flush_stops_current_view_delivery() {
        let mut b = ViewSyncBuffer::new(3);
        assert_eq!(b.receive(m(3, "pre")), vec!["pre"]);
        assert_eq!(b.flush(), 1);
        assert!(b.receive(m(3, "post-flush")).is_empty());
    }

    #[test]
    fn skipped_views_are_dropped() {
        let mut b = ViewSyncBuffer::new(1);
        b.receive(m(2, "for-view-2"));
        b.receive(m(3, "for-view-3"));
        b.flush();
        // The group jumped straight to view 3 (view 2 aborted).
        let released = b.install_view(3);
        assert_eq!(released, vec!["for-view-3"]);
        // View 2's message is gone for good.
        assert!(b.receive(m(2, "again")).is_empty());
    }

    #[test]
    #[should_panic(expected = "views must advance")]
    fn views_must_advance() {
        let mut b: ViewSyncBuffer<&str> = ViewSyncBuffer::new(5);
        b.install_view(5);
    }
}
