//! Group broadcast as a communication round.
//!
//! §3.3 (footnote 6): "A communication round is the distribution of a
//! message to a set of processes. The collection of synchronous replies is
//! included in the round." Deceit's write path is built entirely from such
//! rounds: update distribution, token request/pass, stability notification,
//! replica inquiries.
//!
//! [`broadcast_round`] performs one round against the simulated network and
//! returns who answered and when. The caller decides how many replies it
//! needs — the *write safety level* `s` of §4 maps to
//! [`BcastOutcome::latency_first_k`]`(s)`.

use deceit_net::{Network, NodeId};
use deceit_sim::SimDuration;

/// The result of one communication round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcastOutcome {
    /// Members that received the message and replied, with the round-trip
    /// time of each reply, sorted by arrival (ascending round-trip).
    pub replies: Vec<(NodeId, SimDuration)>,
    /// Members that could not be reached (crashed or partitioned away).
    /// Per §2.4, this *is* the failure detection signal.
    pub unreachable: Vec<NodeId>,
}

impl BcastOutcome {
    /// Number of correct replies collected.
    pub fn reply_count(&self) -> usize {
        self.replies.len()
    }

    /// The members that answered, in arrival order.
    pub fn responders(&self) -> Vec<NodeId> {
        self.replies.iter().map(|(n, _)| *n).collect()
    }

    /// Whether a specific member answered.
    pub fn heard_from(&self, node: NodeId) -> bool {
        self.replies.iter().any(|(n, _)| *n == node)
    }

    /// Time until the first `k` replies are in hand.
    ///
    /// `k == 0` models a fully asynchronous send (the caller does not
    /// wait); if fewer than `k` members answered, the round completes when
    /// the last available reply arrives — "a value greater than or equal to
    /// the number of available replicas produces slow and fully synchronous
    /// writes" (§4).
    pub fn latency_first_k(&self, k: usize) -> SimDuration {
        if k == 0 || self.replies.is_empty() {
            return SimDuration::ZERO;
        }
        let idx = k.min(self.replies.len()) - 1;
        self.replies[idx].1
    }

    /// Time until every available reply arrived.
    pub fn full_latency(&self) -> SimDuration {
        self.replies.last().map_or(SimDuration::ZERO, |(_, d)| *d)
    }
}

/// Executes one broadcast round from `from` to `targets`.
///
/// Each reachable target is charged one request message of `bytes` and one
/// reply of `reply_bytes` on the network. Delivery to `from` itself (ISIS
/// self-delivery) is free and reported with a negligible round-trip, so a
/// token holder broadcasting an update to its own file group observes its
/// local replica answer first — which is what makes write safety level 1
/// fast in the common case.
pub fn broadcast_round(
    net: &Network,
    from: NodeId,
    targets: impl IntoIterator<Item = NodeId>,
    bytes: usize,
    reply_bytes: usize,
    tag: &'static str,
) -> BcastOutcome {
    let mut replies = Vec::new();
    let mut unreachable = Vec::new();
    for to in targets {
        if to == from {
            // Local delivery: a procedure call, not a network message.
            replies.push((to, SimDuration::from_micros(10)));
            continue;
        }
        match net.send(from, to, bytes, tag) {
            deceit_net::Delivery::Delivered(out) => match net.send(to, from, reply_bytes, tag) {
                deceit_net::Delivery::Delivered(back) => replies.push((to, out + back)),
                deceit_net::Delivery::Unreachable => unreachable.push(to),
            },
            deceit_net::Delivery::Unreachable => unreachable.push(to),
        }
    }
    replies.sort_by_key(|&(n, d)| (d, n));
    BcastOutcome { replies, unreachable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deceit_sim::SimDuration;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    fn net() -> Network {
        Network::fixed(SimDuration::from_millis(1), 7)
    }

    #[test]
    fn all_reachable_members_reply() {
        let net = net();
        let out = broadcast_round(&net, n(0), [n(1), n(2), n(3)], 100, 16, "upd");
        assert_eq!(out.reply_count(), 3);
        assert!(out.unreachable.is_empty());
        // Fixed latency: every round trip is exactly 2 ms.
        assert_eq!(out.full_latency(), SimDuration::from_millis(2));
        // 3 requests + 3 replies.
        assert_eq!(net.stats().tag_count("upd"), 6);
    }

    #[test]
    fn self_delivery_is_free_and_first() {
        let net = net();
        let out = broadcast_round(&net, n(0), [n(0), n(1)], 100, 16, "upd");
        assert_eq!(out.reply_count(), 2);
        assert_eq!(out.replies[0].0, n(0));
        assert!(out.replies[0].1 < SimDuration::from_micros(100));
        // Only the remote member used the network.
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn crashed_member_is_unreachable() {
        let mut net = net();
        net.crash(n(2));
        let out = broadcast_round(&net, n(0), [n(1), n(2)], 10, 10, "t");
        assert_eq!(out.reply_count(), 1);
        assert_eq!(out.unreachable, vec![n(2)]);
        assert!(out.heard_from(n(1)));
        assert!(!out.heard_from(n(2)));
    }

    #[test]
    fn first_k_latency_semantics() {
        let net = net();
        let out = broadcast_round(&net, n(0), [n(0), n(1), n(2)], 10, 10, "t");
        // k=0: asynchronous.
        assert_eq!(out.latency_first_k(0), SimDuration::ZERO);
        // k=1: the free self-reply satisfies it.
        assert!(out.latency_first_k(1) < SimDuration::from_micros(100));
        // k=2: one real round trip.
        assert_eq!(out.latency_first_k(2), SimDuration::from_millis(2));
        // k beyond available replies degrades to full latency.
        assert_eq!(out.latency_first_k(99), out.full_latency());
    }

    #[test]
    fn empty_target_set() {
        let net = net();
        let out = broadcast_round(&net, n(0), [], 10, 10, "t");
        assert_eq!(out.reply_count(), 0);
        assert_eq!(out.latency_first_k(1), SimDuration::ZERO);
        assert_eq!(out.full_latency(), SimDuration::ZERO);
    }

    #[test]
    fn partitioned_members_fail() {
        let mut net = net();
        net.split(&[&[n(0), n(1)], &[n(2), n(3)]]);
        let out = broadcast_round(&net, n(0), [n(1), n(2), n(3)], 10, 10, "t");
        assert_eq!(out.responders(), vec![n(1)]);
        assert_eq!(out.unreachable, vec![n(2), n(3)]);
    }
}
