//! Property-based tests for the ISIS ordering machinery.
//!
//! §3.3 requires that "updates arrive in identical order at all servers
//! regardless of token movement"; these properties check the two ordering
//! protocols deliver that guarantee under arbitrary arrival permutations.

use deceit_isis::{
    CausalMsg, CausalReceiver, CausalSender, OrderedReceiver, SequencedMsg, Sequencer, VectorClock,
};
use deceit_net::NodeId;
use proptest::prelude::*;

/// Applies an arrival permutation (as a shuffle key) to a message vector.
fn permute<T: Clone>(items: &[T], key: &[usize]) -> Vec<T> {
    let mut indexed: Vec<(usize, T)> = items.iter().cloned().enumerate().collect();
    indexed.sort_by_key(|(i, _)| key.get(*i).copied().unwrap_or(*i));
    indexed.into_iter().map(|(_, t)| t).collect()
}

proptest! {
    /// ABCAST: any arrival order delivers payloads in sequence order, and
    /// every message is eventually delivered exactly once.
    #[test]
    fn abcast_total_order(n in 1usize..40, key in proptest::collection::vec(0usize..1000, 0..40)) {
        let mut seq = Sequencer::new();
        let msgs: Vec<SequencedMsg<usize>> = (0..n).map(|i| seq.stamp(i)).collect();
        let arrived = permute(&msgs, &key);
        let mut rx = OrderedReceiver::new();
        let mut delivered = Vec::new();
        for m in arrived {
            for (s, p) in rx.receive(m) {
                delivered.push((s, p));
            }
        }
        let expected: Vec<(u64, usize)> = (0..n).map(|i| (i as u64, i)).collect();
        prop_assert_eq!(delivered, expected);
        prop_assert_eq!(rx.held_count(), 0);
    }

    /// ABCAST with duplicates: retransmissions never cause double delivery.
    #[test]
    fn abcast_duplicates_ignored(n in 1usize..20, dups in proptest::collection::vec(0usize..20, 0..40)) {
        let mut seq = Sequencer::new();
        let msgs: Vec<SequencedMsg<usize>> = (0..n).map(|i| seq.stamp(i)).collect();
        let mut rx = OrderedReceiver::new();
        let mut count = 0usize;
        for m in &msgs {
            count += rx.receive(m.clone()).len();
        }
        for d in dups {
            if d < n {
                count += rx.receive(msgs[d].clone()).len();
            }
        }
        prop_assert_eq!(count, n);
    }

    /// CBCAST: a single sender's stream is delivered FIFO under any
    /// arrival permutation.
    #[test]
    fn cbcast_fifo_per_sender(n in 1usize..30, key in proptest::collection::vec(0usize..1000, 0..30)) {
        let mut tx = CausalSender::new(NodeId(0));
        let msgs: Vec<CausalMsg<usize>> = (0..n).map(|i| tx.send(i)).collect();
        let arrived = permute(&msgs, &key);
        let mut rx = CausalReceiver::new();
        let mut delivered = Vec::new();
        for m in arrived {
            for d in rx.receive(m) {
                delivered.push(d.payload);
            }
        }
        prop_assert_eq!(delivered, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(rx.held_count(), 0);
    }

    /// CBCAST: across two causally chained senders, causal order holds for
    /// any interleaving; i.e. a reply never delivers before its cause.
    #[test]
    fn cbcast_causal_chains(rounds in 1usize..10, key in proptest::collection::vec(0usize..1000, 0..20)) {
        let mut a = CausalSender::new(NodeId(0));
        let mut b = CausalSender::new(NodeId(1));
        // Alternating cause/effect pairs: a sends 2k, b (having seen it)
        // sends 2k+1.
        let mut msgs = Vec::new();
        for k in 0..rounds {
            let cause = a.send(2 * k);
            b.deliver(&cause);
            let effect = b.send(2 * k + 1);
            a.deliver(&effect);
            msgs.push(cause);
            msgs.push(effect);
        }
        let arrived = permute(&msgs, &key);
        let mut rx = CausalReceiver::new();
        let mut delivered = Vec::new();
        for m in arrived {
            for d in rx.receive(m) {
                delivered.push(d.payload);
            }
        }
        prop_assert_eq!(delivered.len(), 2 * rounds);
        // Each effect (odd) must come after its cause (the preceding even).
        for k in 0..rounds {
            let pc = delivered.iter().position(|&p| p == 2 * k).unwrap();
            let pe = delivered.iter().position(|&p| p == 2 * k + 1).unwrap();
            prop_assert!(pc < pe, "effect {} delivered before cause {}", 2 * k + 1, 2 * k);
        }
    }

    /// Vector clocks: merge is an upper bound, and compare is antisymmetric.
    #[test]
    fn vclock_laws(ticks in proptest::collection::vec((0u32..4, 0u32..4), 0..50)) {
        let mut x = VectorClock::new();
        let mut y = VectorClock::new();
        for (node, which) in ticks {
            if which % 2 == 0 {
                x.tick(NodeId(node));
            } else {
                y.tick(NodeId(node));
            }
        }
        let mut m = x.clone();
        m.merge(&y);
        // Merge dominates both inputs.
        prop_assert!(!m.happens_before(&x));
        prop_assert!(!m.happens_before(&y));
        prop_assert!(!m.concurrent_with(&x));
        prop_assert!(!m.concurrent_with(&y));
        // Antisymmetry of strict order.
        prop_assert!(!(x.happens_before(&y) && y.happens_before(&x)));
    }
}
