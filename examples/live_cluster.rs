//! A live (multi-threaded) mini-cluster.
//!
//! Every experiment in this repository runs on the deterministic
//! simulator, but the ordering machinery is plain Rust that works just as
//! well on real threads. This example runs three server threads over the
//! in-memory [`deceit::net::live::LiveBus`] transport: a token-holding
//! primary sequences updates (ABCAST, §3.3) and broadcasts them to two
//! replicas, which deliver strictly in order even though the transport
//! and scheduler are free to race. A partition is injected and healed
//! mid-stream.
//!
//! Run with: `cargo run --example live_cluster`

use std::thread;
use std::time::Duration;

use deceit::isis::{OrderedReceiver, SequencedMsg, Sequencer};
use deceit::net::live::LiveBus;
use deceit::net::NodeId;

/// Messages exchanged by the live servers.
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    /// Primary → replica: a sequenced segment update.
    Update(SequencedMsg<Vec<u8>>),
    /// Replica → primary: ack of one sequence number.
    Ack(u64),
    /// Primary → replica: shut down after this stream.
    Done,
}

fn main() {
    println!("== Deceit live mini-cluster: 3 threads, real channels ==\n");
    let bus: LiveBus<Msg> = LiveBus::new();
    let primary_ep = bus.register(NodeId(0));
    let replica_ids = [NodeId(1), NodeId(2)];
    let mut handles = Vec::new();

    // Replica threads: deliver updates in sequence order, ack each one.
    for rid in replica_ids {
        let ep = bus.register(rid);
        handles.push(thread::spawn(move || {
            let mut rx: OrderedReceiver<Vec<u8>> = OrderedReceiver::new();
            let mut applied: Vec<u8> = Vec::new();
            while let Some(env) = ep.recv_timeout(Duration::from_secs(5)) {
                match env.msg {
                    Msg::Update(m) => {
                        for (seq, body) in rx.receive(m) {
                            applied = body;
                            let _ = ep.send(env.from, Msg::Ack(seq));
                        }
                    }
                    Msg::Done => break,
                    Msg::Ack(_) => {}
                }
            }
            (rid, rx.delivered_count(), applied)
        }));
    }

    // The primary: stream 50 updates; partition replica 2 for the middle
    // of the stream, heal, and retransmit what it missed (the §3.1
    // "replies dropped below r" signal, handled by re-feeding updates).
    let mut seq = Sequencer::new();
    let mut log: Vec<SequencedMsg<Vec<u8>>> = Vec::new();
    let mut acked = [0u64; 3];
    for i in 0..50u64 {
        if i == 15 {
            println!("t={i}: partitioning replica n2 away");
            bus.split(&[&[NodeId(0), NodeId(1)], &[NodeId(2)]]);
        }
        if i == 35 {
            println!("t={i}: healing the partition; retransmitting backlog to n2");
            bus.heal();
            for m in &log {
                let _ = primary_ep.send(NodeId(2), Msg::Update(m.clone()));
            }
        }
        let body = format!("update-{i}").into_bytes();
        let msg = seq.stamp(body);
        log.push(msg.clone());
        for rid in replica_ids {
            let _ = primary_ep.send(rid, Msg::Update(msg.clone()));
        }
        // Collect any acks that have arrived (non-blocking).
        while let Some(env) = primary_ep.try_recv() {
            if let Msg::Ack(s) = env.msg {
                let idx = env.from.index();
                acked[idx] = acked[idx].max(s + 1);
            }
        }
    }
    // Drain remaining acks, then stop the replicas.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (acked[1] < 50 || acked[2] < 50) && std::time::Instant::now() < deadline {
        if let Some(env) = primary_ep.recv_timeout(Duration::from_millis(100)) {
            if let Msg::Ack(s) = env.msg {
                let idx = env.from.index();
                acked[idx] = acked[idx].max(s + 1);
            }
        }
    }
    for rid in replica_ids {
        let _ = primary_ep.send(rid, Msg::Done);
    }

    for h in handles {
        let (rid, delivered, applied) = h.join().expect("replica thread");
        println!(
            "{rid}: delivered {delivered}/50 in order; final contents {:?}",
            String::from_utf8_lossy(&applied)
        );
        assert_eq!(delivered, 50, "every update delivered exactly once, in order");
        assert_eq!(applied, b"update-49");
    }
    println!(
        "\nbus stats: {} delivered, {} rejected by the partition",
        bus.delivered(),
        bus.rejected()
    );
    assert!(bus.rejected() > 0, "the partition must have rejected traffic");
    println!("OK: total order held across threads, races, partition, and retransmission.");
}
