//! A live (multi-threaded) Deceit cluster.
//!
//! Every experiment in this repository runs on the deterministic
//! simulator, but the protocol stack is plain Rust that works just as
//! well on real threads. This example runs the **full file system live**:
//! three server threads host the segment-server protocols (replication,
//! tokens, stability, recovery) behind the NFS envelope, while four
//! client threads hammer them with concurrent create/write/read traffic
//! over the in-memory [`deceit::net::live::LiveBus`] transport. Mid-run,
//! one server is crashed without notification; the survivors keep
//! serving every replicated byte, and after a restart the cell heals to
//! full replication.
//!
//! Run with: `cargo run --example live_cluster`

use std::thread;

use deceit::prelude::*;

fn main() {
    println!("== Deceit live cluster: 3 server threads, 4 client threads ==\n");
    let rt = ClusterRuntime::start(RuntimeConfig::new(3));
    let root = rt.client().root();

    // Phase 1: concurrent load. Each client owns a set of files at
    // replication level 3, written through coalescing write batches.
    let workers: Vec<_> = (0..4)
        .map(|c| {
            let mut client = rt.client();
            thread::spawn(move || {
                let mut names = Vec::new();
                for i in 0..5 {
                    let name = format!("client{c}/file{i}").replace('/', "_");
                    let attr = client.create(root, &name, 0o644).expect("create");
                    client
                        .set_file_params(attr.handle, FileParams::important(3))
                        .expect("replicate");
                    let body = format!("{name}: written live by client thread {c}");
                    let mut batch = client.batch(attr.handle);
                    for (j, chunk) in body.as_bytes().chunks(8).enumerate() {
                        batch.push(j * 8, chunk);
                    }
                    batch.flush(&mut client).expect("batched write");
                    let back = client.read(attr.handle, 0, 1 << 16).expect("read back");
                    assert_eq!(&back[..], body.as_bytes());
                    names.push((name, body));
                }
                (c, client.home(), names)
            })
        })
        .collect();

    let mut files = Vec::new();
    for w in workers {
        let (c, home, names) = w.join().expect("client thread");
        println!("client {c} (homed on {home}): wrote {} files", names.len());
        files.extend(names);
    }
    rt.settle();

    // Phase 2: crash a server without notification.
    let victim = NodeId(0);
    println!("\ncrashing {victim} without notification ...");
    rt.crash_server(victim);

    // A client homed on the victim transparently fails over for reads.
    let mut survivor_client = rt.client_homed(victim);
    let (name, body) = &files[0];
    let attr = survivor_client.lookup(root, name).expect("failover lookup");
    let data = survivor_client.read(attr.handle, 0, 1 << 16).expect("failover read");
    assert_eq!(&data[..], body.as_bytes());
    println!(
        "client homed on {victim} failed over to {} and read {name} intact",
        survivor_client.home()
    );

    // Every replicated file survives, served by the remaining threads.
    let mut reader = rt.client_homed(NodeId(1));
    for (name, body) in &files {
        let attr = reader.lookup(root, name).expect("lookup via survivor");
        let data = reader.read(attr.handle, 0, 1 << 16).expect("read via survivor");
        assert_eq!(&data[..], body.as_bytes(), "{name} lost data in the crash");
    }
    println!("all {} files read back intact through the survivors", files.len());

    // Phase 3: restart; the next update round restores replication 3.
    println!("\nrestarting {victim} and rewriting to regenerate replicas ...");
    rt.restart_server(victim);
    rt.settle();
    for (name, body) in &files {
        let attr = reader.lookup(root, name).expect("lookup");
        reader.write(attr.handle, 0, body.as_bytes()).expect("regenerating write");
    }
    rt.settle();
    for (name, _) in &files {
        let attr = reader.lookup(root, name).expect("lookup");
        let holders = reader.locate_replicas(attr.handle).expect("locate");
        assert_eq!(holders.len(), 3, "{name} must be back at replication 3");
    }
    println!("every file is back at replication level 3");

    let stats = rt.stats();
    let (_engine, report) = rt.shutdown();
    println!(
        "\nbus: {} delivered, {} rejected by crash/partition state",
        report.bus_delivered, report.bus_rejected
    );
    println!(
        "servers served {} requests total ({} while this snapshot was taken)",
        report.served.iter().map(|(_, n)| n).sum::<u64>(),
        stats.requests_served
    );
    assert!(report.bus_rejected > 0, "the crash must have rejected traffic");
    println!("\nOK: the Deceit protocols held on real threads, through crash and recovery.");
}
