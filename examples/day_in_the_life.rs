//! A day in the life of a Deceit cell.
//!
//! Drives the full §2.3 operational model against an 8-server cell for a
//! simulated working day: bursty file activity ("long periods of total
//! inactivity punctuated by high activity"), directory locality, the
//! getattr/lookup/read/write-dominated op mix, small files — with one
//! server crash and one network partition along the way. Prints the
//! system's own accounting at the end of the day.
//!
//! Run with: `cargo run --release --example day_in_the_life`

use deceit::prelude::*;
use deceit::sim::SimRng;

fn main() {
    println!("== A day in the life of a Deceit cell ==\n");
    let servers = 8;
    let mut fs = DeceitFs::new(
        servers,
        ClusterConfig::default().with_seed(1989).without_trace(),
        FsConfig {
            root_params: FileParams::important(3),
            dir_params: FileParams::important(2),
            ..FsConfig::default()
        },
    );
    let root = fs.root();
    let mut rng = SimRng::new(1989);

    // Morning: users create their working sets (clustered directories).
    let mut dirs = Vec::new();
    let mut files: Vec<(FileHandle, usize)> = Vec::new();
    for d in 0..6 {
        let via = NodeId((d % servers) as u32);
        let dir = fs.mkdir(via, root, &format!("proj{d}"), 0o755).unwrap().value;
        dirs.push(dir.handle);
        for f in 0..5 {
            let via = NodeId(rng.index(servers) as u32);
            let attr = fs.create(via, dir.handle, &format!("file{f}"), 0o644).unwrap().value;
            fs.set_file_params(via, attr.handle, FileParams::important(2)).unwrap();
            let body = vec![b'.'; rng.file_size().min(16 * 1024)];
            fs.write(via, attr.handle, 0, &body).unwrap();
            files.push((attr.handle, d));
        }
    }
    fs.cluster.run_until_quiet();
    println!("morning: 6 project dirs, 30 files, replication 2, spread over 8 servers");

    // The working day: bursts of activity separated by idle gaps.
    let mut ops = 0u64;
    let mut total_latency = SimDuration::ZERO;
    let mut incidents = Vec::new();
    for burst in 0..20 {
        // Idle gap (exponential, mean 30 s of simulated time).
        fs.cluster.advance(rng.exp_duration(SimDuration::from_secs(30)));

        // Mid-morning incident: server 3 dies for two bursts.
        if burst == 6 {
            fs.cluster.crash_server(NodeId(3));
            incidents.push("burst 6: server n3 crashed");
        }
        if burst == 8 {
            fs.cluster.recover_server(NodeId(3));
            fs.cluster.run_until_quiet();
            incidents.push("burst 8: server n3 recovered (obsolete replicas GC'd)");
        }
        // Afternoon incident: a partition that heals.
        if burst == 14 {
            fs.cluster.split(&[
                &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                &[NodeId(4), NodeId(5), NodeId(6), NodeId(7)],
            ]);
            incidents.push("burst 14: network partitioned 4|4");
        }
        if burst == 16 {
            fs.cluster.heal();
            fs.cluster.run_until_quiet();
            incidents.push("burst 16: partition healed, versions reconciled");
        }

        // The burst itself: a hot directory, §2.3 op mix.
        let hot_dir = rng.zipf(dirs.len(), 1.0);
        let burst_len = 20 + rng.index(30);
        for _ in 0..burst_len {
            let candidates: Vec<usize> = files
                .iter()
                .enumerate()
                .filter(|(_, (_, d))| *d == hot_dir)
                .map(|(i, _)| i)
                .collect();
            let (fh, _) = files[candidates[rng.index(candidates.len())]];
            let via = NodeId(rng.index(servers) as u32);
            if fs.cluster.check_up(via).is_err() {
                continue; // this user's server is down; they go for coffee
            }
            let p = rng.unit();
            let lat = if p < 0.42 {
                fs.getattr(via, fh).map(|r| r.latency)
            } else if p < 0.70 {
                fs.read(via, fh, 0, 1 << 16).map(|r| r.latency)
            } else if p < 0.92 {
                let body = vec![b'x'; rng.file_size().min(16 * 1024)];
                fs.write(via, fh, 0, &body).map(|r| r.latency)
            } else {
                fs.readdir(via, dirs[hot_dir]).map(|r| r.latency)
            };
            if let Ok(l) = lat {
                ops += 1;
                total_latency += l;
            }
        }
    }
    fs.cluster.run_until_quiet();

    println!("\nincidents:");
    for i in &incidents {
        println!("  {i}");
    }
    println!("\nend of day ({} simulated):", fs.cluster.now());
    println!("  client ops completed : {ops}");
    println!(
        "  mean op latency      : {:.1} ms",
        total_latency.as_micros() as f64 / ops as f64 / 1000.0
    );
    let stats = fs.cluster.net.stats();
    println!("  network messages     : {}", stats.messages);
    println!("  bytes moved          : {} KB", stats.bytes / 1024);
    println!("  token passes         : {}", fs.cluster.stats.counter("core/token/passes"));
    println!("  replicas regenerated : {}", fs.cluster.stats.counter("core/replicas/generated"));
    println!(
        "  stability rounds     : {} unstable / {} stable",
        fs.cluster.stats.counter("core/stability/unstable_rounds"),
        fs.cluster.stats.counter("core/stability/stable_rounds")
    );
    println!("  version conflicts    : {}", fs.cluster.conflicts.len());

    // The invariant that matters at the end of any day: everything
    // readable everywhere, replication restored.
    for (fh, _) in &files {
        let holders = fs.file_replicas(NodeId(0), *fh).unwrap().value;
        assert!(holders.len() >= 2, "under-replicated after the day: {holders:?}");
        fs.read(NodeId(0), *fh, 0, 16).unwrap();
    }
    println!("\nOK: all 30 files replicated ≥2 and readable after the day's churn.");
}
