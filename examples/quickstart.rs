//! Quickstart: the architecture of Figure 6, end to end.
//!
//! A client agent speaks the NFS protocol to a Deceit server; the NFS
//! envelope maps operations onto segments; the segment server replicates
//! them through ISIS-style broadcasts over the simulated network. This
//! example traces one file's life across every layer boundary.
//!
//! Run with: `cargo run --example quickstart`

use deceit::prelude::*;

fn main() {
    println!("== Deceit quickstart: one file through every layer ==\n");

    // Three interchangeable servers form the cell (abstract: "the illusion
    // of a single, large server machine").
    let fs = DeceitFs::with_defaults(3);
    let root = fs.root();
    let mut srv = NfsServer::new(fs);

    // A client agent on machine 100, mounted on server 0 (Figure 6's
    // "NFS client/server protocol" arrow).
    let mut agent = Agent::new(NodeId(100), NodeId(0), AgentConfig::default());
    let mounted_root = agent.mount(&srv);
    assert_eq!(mounted_root, root);
    println!("mounted root {root} from server n0");

    // CREATE walks: agent -> NFS envelope -> segment server.
    let (file, lat) = agent.create(&mut srv, root, "demo.txt", 0o644).unwrap();
    println!("create demo.txt       -> {} ({lat})", file.handle);

    // The Deceit difference: tune THIS file for availability (§4).
    let req = NfsRequest::DeceitSetParams {
        fh: file.handle,
        params: FileParams { min_replicas: 3, ..FileParams::default() },
    };
    let (reply, lat) = agent.rpc(&mut srv, req);
    assert!(reply.as_error().is_none());
    println!("set min_replicas=3    -> ok ({lat})");

    let (_, lat) = agent.write(&mut srv, file.handle, 0, b"hello, 1989").unwrap();
    println!("write 11 bytes        -> ok ({lat})");
    srv.fs.cluster.run_until_quiet();

    let holders = srv.fs.file_replicas(NodeId(0), file.handle).unwrap().value;
    println!("replica holders       -> {holders:?}");

    // Reads are served from the agent's cache the second time (§5.3).
    let (data, lat1) = agent.read_file(&mut srv, file.handle).unwrap();
    let (_, lat2) = agent.read_file(&mut srv, file.handle).unwrap();
    println!("read #1               -> {:?} ({lat1})", String::from_utf8_lossy(&data));
    println!("read #2 (cached)      -> same ({lat2})");

    // Kill the mounted server; the agent fails over transparently (§2.1).
    srv.fs.cluster.crash_server(NodeId(0));
    srv.fs.cluster.advance(SimDuration::from_secs(10)); // expire caches
    let (data, lat) = agent.read_file(&mut srv, file.handle).unwrap();
    println!(
        "read after n0 crash   -> {:?} via n{} ({lat}, {} failover)",
        String::from_utf8_lossy(&data),
        agent.server.0,
        agent.failovers
    );

    // The protocol trace underneath (Table 1's vocabulary).
    println!("\nprotocol events recorded: {}", srv.fs.cluster.trace.len());
    println!("network messages: {}", srv.fs.cluster.net.stats().messages);
    println!("\nOK: every layer exercised.");
}
