//! A partition drill: the §3.6 "hard case" as an operator would see it.
//!
//! Two halves of a cell keep writing the same file through a long
//! partition. On heal, Deceit keeps both incomparable versions, logs the
//! conflict "into a well known file", and the user resolves it — the
//! whole §3.6 narrative, driven end to end.
//!
//! Run with: `cargo run --example partition_drill`

use deceit::prelude::*;

fn main() {
    println!("== Deceit partition drill (§3.6, the hard case) ==\n");
    let mut fs = DeceitFs::with_defaults(4);
    let root = fs.root();
    let left = NodeId(0);
    let right = NodeId(2);

    // A shared design document, fully replicated, tuned for maximum write
    // availability — the user accepts version divergence (§4 "high").
    let f = fs.create(left, root, "design.md", 0o644).unwrap().value;
    fs.set_file_params(
        left,
        f.handle,
        FileParams {
            min_replicas: 4,
            availability: WriteAvailability::High,
            ..FileParams::default()
        },
    )
    .unwrap();
    fs.write(left, f.handle, 0, b"# Design v1\n").unwrap();
    fs.cluster.run_until_quiet();
    println!("design.md replicated on {:?}", fs.file_replicas(left, f.handle).unwrap().value);

    // The network splits down the middle.
    fs.cluster.split(&[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]]);
    println!("\n*** partition: {{n0,n1}} | {{n2,n3}} ***");

    // Both sides keep editing.
    fs.write(left, f.handle, 0, b"# Design v2 (left)\n").unwrap();
    let right_attr = fs.write(right, f.handle, 0, b"# Design v2 (right)\n").unwrap().value;
    println!("left wrote via n0; right wrote via n2 (new major {})", right_attr.version.major);

    // Heal: reconciliation detects the incomparable histories.
    fs.cluster.heal();
    fs.cluster.run_until_quiet();
    println!("\n*** partition healed ***\n");
    println!("conflicts logged: {}", fs.cluster.conflicts.len());
    for c in &fs.cluster.conflicts {
        println!("  {}: majors {:?} at {}", c.seg, c.majors, c.at);
    }
    assert_eq!(fs.cluster.conflicts.len(), 1);

    // "Both versions are made available to the user and may be edited,
    // modified, or deleted independently."
    let versions = fs.file_versions(left, f.handle).unwrap().value;
    println!("\nsurviving versions of design.md:");
    for v in &versions {
        let data =
            fs.read(left, FileHandle::versioned(f.handle.segment(), v.major), 0, 64).unwrap().value;
        println!("  ;{}  {:?}", v.major, String::from_utf8_lossy(&data));
    }
    assert_eq!(versions.len(), 2);

    // The user merges by hand and deletes the loser.
    let majors: Vec<u64> = versions.iter().map(|v| v.major).collect();
    let keep = *majors.iter().max().unwrap();
    let drop = *majors.iter().min().unwrap();
    let keep_handle = FileHandle::versioned(f.handle.segment(), keep);
    fs.write(left, keep_handle, 0, b"# Design v3 (merged by hand)\n").unwrap();
    fs.remove(left, root, &format!("design.md;{drop}")).unwrap();
    fs.cluster.run_until_quiet();

    let final_txt = fs.read(right, f.handle, 0, 64).unwrap().value;
    println!("\nafter manual merge, design.md reads:");
    println!("  {:?}", String::from_utf8_lossy(&final_txt));
    assert!(fs.cluster.conflicts.is_empty(), "resolution clears the log");
    assert_eq!(fs.file_versions(left, f.handle).unwrap().value.len(), 1);
    println!("\nOK: divergence detected, preserved, surfaced, and resolved.");
}
