//! §6.2 — data collection and dispersion.
//!
//! "NASA collects huge amounts of data at several remote stations which
//! is processed in a central computing facility. … For a very large data
//! file, the user can turn off automatic localization … the minimum
//! replica level should be 1 until the file has reached its final
//! destination, and then it may be set to 2 to provide a single backup. …
//! Data files can be quickly copied from one server to another using the
//! blast file transfer mechanism … by manually forcing the creation of a
//! replica on the target server and then deleting the replica on the
//! source server."
//!
//! Run with: `cargo run --example data_dispersion`

use deceit::prelude::*;

fn main() {
    println!("== Deceit scenario: data collection & dispersion (§6.2) ==\n");
    // A small number of large machines: 2 collection stations, 1 compute
    // hub, 1 archive.
    let mut fs = DeceitFs::new(4, ClusterConfig::default().with_seed(62), FsConfig::default());
    let root = fs.root();
    let station = NodeId(0);
    let hub = NodeId(2);
    let archive = NodeId(3);

    // Collect a large telemetry file at the station with §6.2's settings:
    // migration off, single replica, conservative token generation.
    let data_dir = fs.mkdir(station, root, "telemetry", 0o755).unwrap().value;
    let f = fs.create(station, data_dir.handle, "pass-0042.raw", 0o644).unwrap().value;
    fs.set_file_params(station, f.handle, FileParams::bulk_data()).unwrap();

    // Stream 4 MB of samples in 64 KB appends (bulk collection).
    let chunk = vec![0xA5u8; 64 * 1024];
    let mut collect_time = SimDuration::ZERO;
    for i in 0..64 {
        let r = fs.write(station, f.handle, i * chunk.len(), &chunk).unwrap();
        collect_time += r.latency;
    }
    fs.cluster.run_until_quiet();
    let size = fs.getattr(station, f.handle).unwrap().value.size;
    println!(
        "collected {} KB at station n0 in {collect_time} (single replica, no migration)",
        size / 1024
    );
    assert_eq!(fs.file_replicas(station, f.handle).unwrap().value, vec![station]);

    // Reads from the hub do NOT create stray replicas (migration off) —
    // "generating a local replica may consume too much disk space."
    fs.read(hub, f.handle, 0, 4096).unwrap();
    fs.cluster.run_until_quiet();
    assert_eq!(
        fs.file_replicas(station, f.handle).unwrap().value.len(),
        1,
        "no uncontrolled replica generation"
    );
    println!("hub read served remotely; replica count still 1");

    // Move the file to the hub with the blast mechanism: force a replica
    // on the target, then delete the source replica.
    let t0 = fs.cluster.now();
    fs.cluster.create_replica_on(station, f.handle.segment(), hub).unwrap();
    fs.cluster.delete_replica_on(station, f.handle.segment(), station).unwrap();
    fs.cluster.run_until_quiet();
    let move_time = fs.cluster.now() - t0;
    let holders = fs.file_replicas(hub, f.handle).unwrap().value;
    println!("blast-moved file to hub: holders now {holders:?} ({move_time})");
    assert_eq!(holders, vec![hub]);

    // "At any time during the manipulation of the data location, the file
    // data is available for reading and writing via any server."
    let r = fs.read(station, f.handle, 0, 16).unwrap().value;
    assert_eq!(r.len(), 16);
    println!("station can still read the moved file (forwarded)");

    // Parked at its destination: raise the replica level to 2 for backup.
    fs.set_file_params(hub, f.handle, FileParams { min_replicas: 2, ..FileParams::bulk_data() })
        .unwrap();
    fs.cluster.run_until_quiet();
    let holders = fs.file_replicas(hub, f.handle).unwrap().value;
    println!("backup replica created: holders {holders:?}");
    assert_eq!(holders.len(), 2);

    // The archive pulls a processed product; the blast channel keeps the
    // effective throughput near line rate for big files.
    let blast = fs.cluster.cfg.blast;
    let eff = blast.effective_throughput(size as u64, SimDuration::from_millis(2));
    println!(
        "\nblast channel: {:.0} KB/s effective for the {} KB file ({} KB/s line rate)",
        eff / 1024.0,
        size / 1024,
        blast.bandwidth_bps / 1024
    );
    let _ = archive;
    println!("\nOK: the §6.2 workflow runs exactly as narrated.");
}
