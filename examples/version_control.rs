//! The §3.5 version-control system as a user workflow.
//!
//! "The facility … may also be accessed directly at the user level as a
//! normal file versioning system, such as in a source code management
//! system. … The system behaves similarly to the VAX/VMS version control
//! system, except that VMS produces a new version on every file update,
//! while Deceit produces new versions only during partitions or when
//! explicitly requested."
//!
//! Run with: `cargo run --example version_control`

use deceit::prelude::*;

fn main() {
    println!("== Deceit version control (§3.5) ==\n");
    let mut fs = DeceitFs::with_defaults(4);
    let root = fs.root();
    let dev = NodeId(0);

    // A source file under "version control".
    let f = fs.create(dev, root, "kernel.c", 0o644).unwrap().value;
    let v0 = f.version.major;
    fs.write(dev, f.handle, 0, b"int main() { return 0; }").unwrap();
    fs.write(dev, f.handle, 0, b"int main() { return 1; }").unwrap();
    println!("kernel.c created as major version {v0}; edited twice (same version)");

    // Unlike VMS, plain updates do NOT spawn versions.
    let versions = fs.file_versions(dev, f.handle).unwrap().value;
    assert_eq!(versions.len(), 1, "updates alone never branch the history");
    println!("after 2 updates: still {} version (VMS would have 3)", versions.len());

    // Explicit snapshot before a risky change ("foo;N" creation).
    let snap = fs.create(dev, root, "kernel.c;1", 0o644).unwrap().value;
    let v_new = snap.version.major;
    fs.cluster.run_until_quiet();
    fs.write(dev, f.handle, 0, b"int main() { launch_rockets(); }").unwrap();
    println!("\nsnapshotted, then rewrote. versions now:");
    for v in fs.file_versions(dev, f.handle).unwrap().value {
        println!(
            "  kernel.c;{}  pair {}  replicas {:?}  token {}",
            v.major, v.version, v.holders, v.has_token
        );
    }

    // Unqualified name = newest; qualified = pinned (§3.5).
    let latest = fs.lookup(dev, root, "kernel.c").unwrap().value;
    let pinned = fs.lookup(dev, root, &format!("kernel.c;{v0}")).unwrap().value;
    let new_txt = fs.read(dev, latest.handle, 0, 64).unwrap().value;
    let old_txt = fs.read(dev, pinned.handle, 0, 64).unwrap().value;
    println!("\nkernel.c        -> {:?}", String::from_utf8_lossy(&new_txt));
    println!("kernel.c;{v0}     -> {:?}", String::from_utf8_lossy(&old_txt));
    assert_ne!(new_txt, old_txt);
    assert_eq!(latest.version.major, v_new);

    // "a user can inquire about the relationships between versions":
    let table = fs.cluster.branch_table_snapshot(f.handle.segment());
    let rel =
        table.relation(VersionPair { major: v0, sub: 2 }, VersionPair { major: v_new, sub: 2 });
    println!("\nrelation(v{v0} at branch, v{v_new}) = {rel:?}");

    // Roll back: delete the bad version; the snapshot becomes newest.
    fs.remove(dev, root, &format!("kernel.c;{v_new}")).unwrap();
    let restored = fs.lookup(dev, root, "kernel.c").unwrap().value;
    let txt = fs.read(dev, restored.handle, 0, 64).unwrap().value;
    println!("\ndeleted kernel.c;{v_new}; kernel.c now reads {:?}", String::from_utf8_lossy(&txt));
    assert_eq!(&txt[..], b"int main() { return 1; }");
    println!("\nOK: explicit versions, pinned access, rollback — all per §3.5.");
}
