//! §6.1 — the academic public workstation environment.
//!
//! "A large number of small, inexpensive, and unreliable machines. …
//! Users will typically want to set the replication level to 2 or 3 on
//! important source and text files; other files can be regenerated if
//! necessary. The system administrator should set the replication level
//! to be 2 or 3 on all important system directories, binaries, and
//! libraries."
//!
//! This example builds that environment, runs an edit/compile workload
//! while machines crash and recover, and reports the availability of
//! important vs regenerable files.
//!
//! Run with: `cargo run --example academic`

use deceit::prelude::*;

fn main() {
    println!("== Deceit scenario: academic public workstations (§6.1) ==\n");
    let n_servers = 8;
    let mut fs = DeceitFs::new(
        n_servers,
        ClusterConfig::default().with_seed(61),
        FsConfig {
            // The administrator replicates important system directories.
            root_params: FileParams::important(3),
            dir_params: FileParams::important(2),
            ..FsConfig::default()
        },
    );
    let root = fs.root();
    let admin = NodeId(0);

    // System tree: /bin with replicated binaries.
    let bin = fs.mkdir(admin, root, "bin", 0o755).unwrap().value;
    for tool in ["cc", "ed", "make"] {
        let f = fs.create(admin, bin.handle, tool, 0o755).unwrap().value;
        fs.set_file_params(admin, f.handle, FileParams::important(3)).unwrap();
        fs.write(admin, f.handle, 0, format!("binary:{tool}").as_bytes()).unwrap();
    }

    // Users: homes with important sources (replicated 2) and regenerable
    // object files (default replication 1).
    let home = fs.mkdir(admin, root, "home", 0o755).unwrap().value;
    let mut sources = Vec::new();
    let mut objects = Vec::new();
    for (i, user) in ["siegel", "birman", "marzullo"].iter().enumerate() {
        let via = NodeId((i % n_servers) as u32);
        let udir = fs.mkdir(via, home.handle, user, 0o755).unwrap().value;
        let src = fs.create(via, udir.handle, "thesis.tex", 0o644).unwrap().value;
        fs.set_file_params(via, src.handle, FileParams::important(2)).unwrap();
        fs.write(via, src.handle, 0, format!("\\title{{{user}}}").as_bytes()).unwrap();
        sources.push((via, src.handle));
        let obj = fs.create(via, udir.handle, "thesis.o", 0o644).unwrap().value;
        fs.write(via, obj.handle, 0, b"object code").unwrap();
        objects.push((via, obj.handle));
    }
    fs.cluster.run_until_quiet();

    println!("built /bin (3 replicas each) and 3 user homes (sources x2, objects x1)\n");

    // Unreliable machines: crash two servers and count what survives.
    let (mut src_ok, mut obj_ok) = (0, 0);
    for round in 0..4 {
        let victim_a = NodeId((round % n_servers) as u32);
        let victim_b = NodeId(((round + 3) % n_servers) as u32);
        fs.cluster.crash_server(victim_a);
        fs.cluster.crash_server(victim_b);
        let via = NodeId(((round + 1) % n_servers) as u32);
        for (_, fh) in &sources {
            if fs.read(via, *fh, 0, 64).is_ok() {
                src_ok += 1;
            }
        }
        for (_, fh) in &objects {
            if fs.read(via, *fh, 0, 64).is_ok() {
                obj_ok += 1;
            }
        }
        fs.cluster.recover_server(victim_a);
        fs.cluster.recover_server(victim_b);
        fs.cluster.run_until_quiet();
        println!(
            "round {round}: crashed {victim_a},{victim_b}; sources {}/3 objects {}/3 readable",
            src_ok - round * 3,
            obj_ok.min((round + 1) * 3) - round * 3
        );
    }
    let total = 4 * sources.len();
    println!("\nsource availability : {src_ok}/{total} reads (replication 2)");
    println!("object availability : {obj_ok}/{total} reads (replication 1)");
    assert!(src_ok >= obj_ok, "replication should not hurt availability");

    // "Files can be moved transparently from one server to another by the
    // system administrator at any time to provide better disk balancing."
    let (via, fh) = sources[0];
    let holders = fs.file_replicas(via, fh).unwrap().value;
    let spare = (0..n_servers as u32).map(NodeId).find(|s| !holders.contains(s)).unwrap();
    fs.cluster.create_replica_on(via, fh.segment(), spare).unwrap();
    fs.cluster.delete_replica_on(via, fh.segment(), holders[0]).unwrap();
    let moved = fs.file_replicas(via, fh).unwrap().value;
    println!("\nmoved a replica {:?} -> {:?} (disk balancing)", holders, moved);
    assert!(moved.contains(&spare));
    println!("\nOK: the §6.1 environment behaves as the paper prescribes.");
}
