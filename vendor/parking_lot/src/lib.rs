//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks with parking_lot's non-poisoning API shape
//! (guards come back directly, not inside a `Result`). A thread that
//! panics while holding a lock poisons the std lock underneath; this shim
//! deliberately ignores the poison flag, matching parking_lot semantics.

use std::fmt;
use std::sync;

// Guard types are part of parking_lot's public API (they appear in
// return positions); the shim hands back the std guards under the
// parking_lot names.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are returned without a poison check.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A mutual-exclusion lock whose guard is returned without a poison check.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
