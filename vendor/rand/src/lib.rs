//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods this workspace calls: `random()` and `random_range()`.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic per seed. The
//! streams do not match crates.io `rand`, which is fine: determinism here
//! only ever needs to hold within this repository.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generation.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from uniform bits (the `StandardUniform`
/// distribution in real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return ((rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64)) as $t;
                }
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is ≤ 2⁻⁶⁴ per draw, invisible to
/// every statistical check in this workspace).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let x = rng.next_u64() as u128;
        (x * span) >> 64
    } else {
        let x = (rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64);
        x % span
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w: usize = r.random_range(0..=5usize);
            assert!(w <= 5);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
