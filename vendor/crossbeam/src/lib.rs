//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel`'s unbounded channel is used in this
//! workspace; since Rust 1.72 `std::sync::mpsc` is itself backed by the
//! crossbeam implementation (and its `Sender` is `Sync`), so this shim
//! simply re-exports the std types under crossbeam's names.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
    }

    #[test]
    fn sender_is_shareable_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        h.join().unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
