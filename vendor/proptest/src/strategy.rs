//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Flat-maps: the sampled value chooses a second strategy to sample.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `choices` is empty.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    ((rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64)) % span
                };
                self.start.wrapping_add(draw as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1);
                if span == 0 {
                    return ((rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64)) as $t;
                }
                let draw = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    ((rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64)) % span
                };
                self.start().wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
