//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the thin slice of `bytes` it actually uses: [`Bytes`], a
//! cheaply clonable immutable byte buffer with zero-copy slicing.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Sequential big-endian reading from a byte source.
///
/// Implemented for `&[u8]`, which is how the codecs in this workspace
/// consume it: each `get_*` advances the slice itself.
///
/// # Panics
///
/// All getters panic if the source has too few bytes remaining, matching
/// the real crate's contract.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes into `dst` and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advances past `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: not enough bytes remaining");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "Buf: advance past end");
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writing into a growable sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_allocation() {
        let b = Bytes::from(b"hello world".to_vec());
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(w.slice(..2), Bytes::from(b"wo".to_vec()));
    }

    #[test]
    fn equality_and_deref() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(&b[..], b"abc");
        assert!(Bytes::new().is_empty());
    }
}
