//! Offline stand-in for the `serde` crate.
//!
//! Nothing in this workspace consumes serde's data model — the experiment
//! runners emit JSON by hand — so `Serialize` only needs to exist as a
//! marker trait for `#[derive(Serialize)]` to target. The derive macro is
//! re-exported from the sibling stub proc-macro crate, mirroring real
//! serde's layout.

pub use serde_derive::Serialize;

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
