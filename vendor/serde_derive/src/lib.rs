//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` shim declares `Serialize` as a marker trait
//! (nothing in-tree consumes serialization output; the experiment tables
//! write their own JSON). This derive therefore only has to emit
//! `impl serde::Serialize for T {}` — done with raw token inspection, no
//! syn/quote, so it builds with zero dependencies.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `Serialize` impl for a struct or enum.
///
/// Supports the plain non-generic items this workspace derives on; a
/// generic item would need the real serde_derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("serde stub: could not find struct/enum name");
    format!("impl ::serde::Serialize for {name} {{}}").parse().expect("serde stub: bad output")
}

/// Finds the identifier following the `struct` or `enum` keyword.
fn item_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}
