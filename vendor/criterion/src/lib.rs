//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API used by this workspace's
//! benches: `Criterion::bench_function`, benchmark groups with
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! simple time-boxed mean over wall-clock iterations — good enough to
//! spot order-of-magnitude regressions, with none of criterion's
//! statistics.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { total: Duration::ZERO, iters: 0, budget }
    }

    /// Runs `f` repeatedly within the time budget, recording the mean.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters >= 100 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no iterations)");
            return;
        }
        let mean = self.total.as_nanos() / self.iters as u128;
        println!("{name:<50} time: {:>12} ns/iter  ({} iters)", mean, self.iters);
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Reads CLI configuration; a no-op in this stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: self.budget, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count; accepted for API compatibility, unused.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets this group's time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("t", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
