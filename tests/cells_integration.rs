//! Cells and the global root directory (§2.2, Figure 3).

use deceit::nfs::cell::GlobalHandle;
use deceit::prelude::*;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// Two cells: "cornell.edu" (3 servers) and "mit.edu" (2 servers), each an
/// independent Deceit instantiation.
fn federation() -> Federation {
    let cornell = DeceitFs::with_defaults(3);
    let mit = DeceitFs::with_defaults(2);
    Federation::new(vec![("cs.cornell.edu".to_string(), cornell), ("cs.mit.edu".to_string(), mit)])
}

#[test]
fn cells_have_distinct_namespaces() {
    let mut fed = federation();
    let cornell = CellId(0);
    let mit = CellId(1);
    let c_root = fed.cell(cornell).root();
    let m_root = fed.cell(mit).root();
    fed.cell(cornell).create(n(0), c_root, "only-cornell", 0o644).unwrap();
    // Each cell maintains its own name space.
    assert!(fed.cell(mit).lookup(n(0), m_root, "only-cornell").is_err());
    assert!(fed.cell(cornell).lookup(n(0), c_root, "only-cornell").is_ok());
}

#[test]
fn global_root_reaches_remote_cell() {
    let mut fed = federation();
    let cornell = CellId(0);
    let mit = CellId(1);

    // MIT publishes a paper in its own namespace.
    let m_root = fed.cell(mit).root();
    let papers = fed.cell(mit).mkdir(n(0), m_root, "papers", 0o755).unwrap().value;
    let f = fed.cell(mit).create(n(0), papers.handle, "isis.ps", 0o644).unwrap().value;
    fed.cell(mit).write(n(0), f.handle, 0, b"virtual synchrony").unwrap();

    // A Cornell user cds to /priv/global/s0.cs.mit.edu and reads it
    // "with normal file operations" (§2.2).
    let path = "/priv/global/s0.cs.mit.edu/papers/isis.ps";
    let looked = fed.lookup_path(cornell, n(1), path).unwrap();
    let (gh, attr) = looked.value;
    assert_eq!(gh.cell, mit);
    assert_eq!(attr.size, 17);
    let data = fed.read(cornell, n(1), gh, 0, 64).unwrap();
    assert_eq!(&data.value[..], b"virtual synchrony");
    // Inter-cell access pays the WAN round trip.
    assert!(data.latency >= fed.inter_cell_rtt, "{} < wan rtt", data.latency);

    // Local access from MIT itself is cheaper.
    let local = fed.lookup_path(mit, n(0), "/papers/isis.ps").unwrap();
    let local_read = fed.read(mit, n(0), local.value.0, 0, 64).unwrap();
    assert!(local_read.latency < data.latency);
}

#[test]
fn unknown_host_in_global_root_fails() {
    let mut fed = federation();
    let err = fed.lookup_path(CellId(0), n(0), "/priv/global/nowhere.example.org/x").unwrap_err();
    assert!(matches!(err, NfsError::NotFound));
}

#[test]
fn cross_cell_write_acts_as_client() {
    let mut fed = federation();
    let cornell = CellId(0);
    let mit = CellId(1);
    let m_root = fed.cell(mit).root();
    let shared = fed.cell(mit).create(n(0), m_root, "guestbook", 0o666).unwrap().value;
    let gh = GlobalHandle { cell: mit, fh: shared.handle };
    // The Cornell cell "acts as a client to the MIT cell" (§2.2).
    fed.write(cornell, n(2), gh, 0, b"greetings from ithaca").unwrap();
    let read_back = fed.cell(mit).read(n(1), shared.handle, 0, 64).unwrap().value;
    assert_eq!(&read_back[..], b"greetings from ithaca");
}

#[test]
fn replication_confined_to_cell() {
    let mut fed = federation();
    let mit = CellId(1);
    let m_root = fed.cell(mit).root();
    let f = fed.cell(mit).create(n(0), m_root, "local-only", 0o644).unwrap().value;
    // Even asking for more replicas than the cell has servers keeps all
    // replicas inside the cell ("replication must be contained within a
    // cell", §2.2).
    fed.cell(mit).set_file_params(n(0), f.handle, FileParams::important(5)).unwrap();
    fed.cell(mit).cluster.run_until_quiet();
    let holders = fed.cell(mit).file_replicas(n(0), f.handle).unwrap().value;
    assert_eq!(holders.len(), 2, "capped at the cell's two servers");
    assert!(holders.iter().all(|h| h.index() < 2));
}
