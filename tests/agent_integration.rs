//! Agent-level integration: cache coherence across clients, Figure 2's
//! communication-path claims, and the Figure 8 configuration sweep, all
//! through the public API.

use deceit::prelude::*;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

fn service(servers: usize) -> (NfsServer, FileHandle) {
    let mut fs = DeceitFs::with_defaults(servers);
    let root = fs.root();
    fs.set_file_params(n(0), root, FileParams::important(servers.min(3))).unwrap();
    fs.cluster.run_until_quiet();
    (NfsServer::new(fs), root)
}

#[test]
fn cross_client_cache_coherence_via_version_pairs() {
    let (mut srv, root) = service(3);
    let mut writer = Agent::new(n(100), n(0), AgentConfig::default());
    let mut reader = Agent::new(n(101), n(1), AgentConfig::default());
    let (f, _) = writer.create(&mut srv, root, "shared", 0o644).unwrap();
    writer.write(&mut srv, f.handle, 0, b"one").unwrap();
    // Reader caches the contents…
    let (d, _) = reader.read_file(&mut srv, f.handle).unwrap();
    assert_eq!(&d[..], b"one");
    // …writer changes them; reader's attr cache expires and the version
    // pair invalidates the stale data cache entry.
    writer.write(&mut srv, f.handle, 0, b"two").unwrap();
    srv.fs.cluster.advance(SimDuration::from_secs(10));
    let (d, _) = reader.read_file(&mut srv, f.handle).unwrap();
    assert_eq!(&d[..], b"two", "version-validated cache never serves stale data");
}

#[test]
fn figure2_any_server_reaches_any_file() {
    // NFS: a client must talk to the server that owns the file. Deceit:
    // any server will do — requests forward server-side.
    let (mut srv, root) = service(4);
    // A file that lives only on server 0.
    let f = srv.fs.create(n(0), root, "owned-by-0", 0o644).unwrap().value;
    srv.fs.write(n(0), f.handle, 0, b"anywhere").unwrap();
    srv.fs.cluster.run_until_quiet();

    for client_server in 0..4 {
        let mut agent = Agent::new(
            n(200 + client_server),
            n(client_server),
            AgentConfig { data_cache: false, ..AgentConfig::default() },
        );
        let (d, _) = agent.read_file(&mut srv, f.handle).unwrap();
        assert_eq!(&d[..], b"anywhere", "via server {client_server}");
    }
    assert!(
        srv.fs.cluster.stats.counter("core/reads/forwarded") >= 3,
        "non-owner servers forwarded"
    );
}

#[test]
fn figure8_configuration_sweep_through_public_api() {
    // Each placement runs the same workload; total latency must rank
    // user-library < kernel < aux-process.
    let mut totals = Vec::new();
    for placement in
        [AgentPlacement::UserLibrary, AgentPlacement::Kernel, AgentPlacement::AuxProcess]
    {
        let (mut srv, root) = service(2);
        let mut agent =
            Agent::new(n(100), n(0), AgentConfig { placement, ..AgentConfig::default() });
        let mut total = SimDuration::ZERO;
        let (f, l) = agent.create(&mut srv, root, "bench", 0o644).unwrap();
        total += l;
        for i in 0..10 {
            let (_, l) = agent.write(&mut srv, f.handle, 0, format!("{i}").as_bytes()).unwrap();
            total += l;
            let (_, l) = agent.read_file(&mut srv, f.handle).unwrap();
            total += l;
        }
        totals.push(total);
    }
    assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
}

#[test]
fn caching_absorbs_the_dominant_op_mix() {
    // §2.3: "The vast majority of NFS operations are get attribute,
    // lookup, read, and write." The agent's caches must absorb repeats of
    // the first three.
    let (mut srv, root) = service(2);
    let mut agent = Agent::new(n(100), n(0), AgentConfig::default());
    let (f, _) = agent.create(&mut srv, root, "hot", 0o644).unwrap();
    agent.write(&mut srv, f.handle, 0, b"hot data").unwrap();

    // Warm.
    agent.lookup(&mut srv, root, "hot").unwrap();
    agent.getattr(&mut srv, f.handle).unwrap();
    agent.read_file(&mut srv, f.handle).unwrap();
    let sent_warm = agent.rpcs_sent;

    // 30 repeats of the hot mix — all cache hits, zero RPCs.
    for _ in 0..30 {
        agent.lookup(&mut srv, root, "hot").unwrap();
        agent.getattr(&mut srv, f.handle).unwrap();
        agent.read_file(&mut srv, f.handle).unwrap();
    }
    assert_eq!(agent.rpcs_sent, sent_warm, "hot mix fully absorbed by caches");
}
