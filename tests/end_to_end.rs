//! End-to-end integration: agent → NFS envelope → segment server → ISIS →
//! network, exercised together across a realistic filesystem workload.

use deceit::prelude::*;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

#[test]
fn multi_client_filesystem_session() {
    let fs = DeceitFs::with_defaults(4);
    let root = fs.root();
    let mut srv = NfsServer::new(fs);
    let mut alice = Agent::new(n(100), n(0), AgentConfig::default());
    let mut bob = Agent::new(n(101), n(2), AgentConfig::default());

    // Alice builds a tree through server 0.
    let (proj, _) = alice.create(&mut srv, root, "plan.txt", 0o644).unwrap();
    alice.write(&mut srv, proj.handle, 0, b"phase 1").unwrap();

    // Bob, mounted on a different server, sees it immediately (single
    // system image + stability notification).
    let (found, _) = bob.lookup(&mut srv, root, "plan.txt").unwrap();
    assert_eq!(found.handle, proj.handle);
    let (data, _) = bob.read_file(&mut srv, found.handle).unwrap();
    assert_eq!(&data[..], b"phase 1");

    // Bob updates; Alice reads the new contents (her cache revalidates by
    // version pair).
    bob.write(&mut srv, found.handle, 0, b"phase 2").unwrap();
    let (data, _) = alice.read_file(&mut srv, proj.handle).unwrap();
    assert_eq!(&data[..], b"phase 2");

    // Directory listing agrees through both agents.
    let (ea, _) = alice.readdir(&mut srv, root).unwrap();
    let (eb, _) = bob.readdir(&mut srv, root).unwrap();
    assert_eq!(ea, eb);
}

#[test]
fn deep_tree_and_namespace_operations() {
    let mut fs = DeceitFs::with_defaults(3);
    let root = fs.root();
    let via = n(0);

    // Build the paper's Figure 1 namespace.
    let usr = fs.mkdir(via, root, "usr", 0o755).unwrap().value;
    let bin = fs.mkdir(via, usr.handle, "bin", 0o755).unwrap().value;
    let lib = fs.mkdir(via, usr.handle, "lib", 0o755).unwrap().value;
    let home = fs.mkdir(via, usr.handle, "home", 0o755).unwrap().value;
    let siegel = fs.mkdir(via, home.handle, "Siegel", 0o755).unwrap().value;
    let memo = fs.create(via, siegel.handle, "memo", 0o644).unwrap().value;
    fs.write(via, memo.handle, 0, b"TR 89-1042").unwrap();
    let sh = fs.create(via, bin.handle, "sh", 0o755).unwrap().value;
    fs.create(via, lib.handle, "libc.a", 0o644).unwrap();

    // Path walking from any server.
    let attr = fs.lookup_path(n(2), "/usr/home/Siegel/memo").unwrap().value;
    assert_eq!(attr.handle.seg, memo.handle.seg);
    assert_eq!(attr.size, 10);

    // Unlike NFS, files are not statically bound to a server: move the
    // shell's replica and the path still resolves identically.
    let holders = fs.file_replicas(via, sh.handle).unwrap().value;
    let target = n(2);
    if !holders.contains(&target) {
        fs.cluster.create_replica_on(via, sh.handle.segment(), target).unwrap();
        fs.cluster.delete_replica_on(via, sh.handle.segment(), holders[0]).unwrap();
    }
    let again = fs.lookup_path(n(1), "/usr/bin/sh").unwrap().value;
    assert_eq!(again.handle.seg, sh.handle.seg);

    // Rename across the tree.
    fs.rename(via, siegel.handle, "memo", bin.handle, "memo-moved").unwrap();
    assert!(fs.lookup_path(n(1), "/usr/home/Siegel/memo").is_err());
    let moved = fs.lookup_path(n(1), "/usr/bin/memo-moved").unwrap().value;
    assert_eq!(moved.handle.seg, memo.handle.seg);
}

#[test]
fn workload_with_background_churn_converges() {
    // A mixed workload across servers with repeated crash/recover churn;
    // at the end every file must be readable with its last written value.
    let mut fs = DeceitFs::new(
        5,
        ClusterConfig::default().with_seed(99),
        FsConfig {
            dir_params: FileParams::important(3),
            root_params: FileParams::important(3),
            ..FsConfig::default()
        },
    );
    let root = fs.root();
    let mut files = Vec::new();
    for i in 0..10 {
        let via = n(i % 5);
        let f = fs.create(via, root, &format!("file{i}"), 0o644).unwrap().value;
        fs.set_file_params(via, f.handle, FileParams::important(2)).unwrap();
        files.push(f.handle);
    }
    let mut last_contents = vec![Vec::new(); files.len()];
    for round in 0u32..6 {
        let victim = n(round % 5);
        fs.cluster.crash_server(victim);
        for (i, fh) in files.iter().enumerate() {
            let via = (0..5u32).map(n).find(|&s| s != victim).unwrap();
            let body = format!("file{i} round{round}").into_bytes();
            // Writes may need a different entry server; availability medium
            // tolerates one dead server with 2 replicas only if the
            // majority is reachable, which it is (1 of 2 down at worst).
            if fs.write(via, *fh, 0, &body).is_ok() {
                last_contents[i] = body;
            }
        }
        fs.cluster.recover_server(victim);
        fs.cluster.run_until_quiet();
    }
    for (i, fh) in files.iter().enumerate() {
        let got = fs.read(n(4), *fh, 0, 1 << 16).unwrap().value;
        assert_eq!(&got[..], &last_contents[i][..], "file{i} diverged");
    }
    assert!(fs.cluster.conflicts.is_empty());
}

#[test]
fn statistics_reflect_architecture() {
    let fs = DeceitFs::with_defaults(3);
    let root = fs.root();
    let mut srv = NfsServer::new(fs);
    let mut agent = Agent::new(n(100), n(1), AgentConfig::default());
    for i in 0..5 {
        let (f, _) = agent.create(&mut srv, root, &format!("f{i}"), 0o644).unwrap();
        agent.write(&mut srv, f.handle, 0, b"data").unwrap();
    }
    let stats = srv.fs.cluster.net.stats();
    assert!(stats.tag_count("nfs-rpc") > 0, "client traffic accounted");
    assert!(stats.tag_count("update") > 0, "update broadcasts accounted");
    assert!(srv.fs.cluster.stats.counter("core/creates") >= 5);
    assert!(srv.fs.cluster.groups.len() >= 5, "one file group per live file");
}
