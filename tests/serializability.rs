//! The Figure 5 experiment, end to end through the NFS envelope.
//!
//! "Client c1 appends to x and then appends to y. Concurrently, client c2
//! successfully reads from y and then observes that x is empty. This
//! result is impossible if there is only one replica of x and y. Yet x
//! and y separately exhibit one-copy serializability."

use deceit::prelude::*;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// Builds files x and y, both replicated on servers 0 and 1, with the
/// write tokens arranged so c1 writes via server 0 and c2 reads via
/// server 1 (the replica whose update lags).
fn setup(stability: bool) -> (DeceitFs, FileHandle, FileHandle) {
    // A generous asynchronous-propagation window makes the §1 observation
    // concrete: "an update can be visible to all clients before it has
    // been delivered to all file replicas."
    let mut cluster_cfg = ClusterConfig::deterministic();
    cluster_cfg.lazy_apply_delay = SimDuration::from_millis(300);
    let mut fs = DeceitFs::new(2, cluster_cfg, FsConfig::default());
    let root = fs.root();
    let params = FileParams { min_replicas: 2, stability, ..FileParams::default() };
    let x = fs.create(n(0), root, "x", 0o644).unwrap().value;
    fs.set_file_params(n(0), x.handle, params).unwrap();
    let y = fs.create(n(0), root, "y", 0o644).unwrap().value;
    fs.set_file_params(n(0), y.handle, params).unwrap();
    fs.cluster.run_until_quiet();
    (fs, x.handle, y.handle)
}

#[test]
fn figure5_anomaly_without_stability_notification() {
    let (mut fs, x, y) = setup(false);
    // c1: append to x, then append to y (via server 0, the token holder).
    fs.write(n(0), x, 0, b"X-DATA").unwrap();
    fs.write(n(0), y, 0, b"Y-DATA").unwrap();
    // c2 (via server 1, before propagation lands there): reads y, then x.
    let read_y = fs.read(n(1), y, 0, 64).unwrap().value;
    let read_x = fs.read(n(1), x, 0, 64).unwrap().value;
    // The anomaly the paper illustrates: y's update visible, x's not —
    // "impossible if there is only one replica of x and y."
    // (Depending on timing both may be stale; the essential violation is
    // that the pair (y new, x old) CAN occur. With deterministic latency
    // it occurs exactly as constructed.)
    assert_eq!(&read_y[..], b"", "y read at server 1 is stale too (lagging replica)");
    assert_eq!(&read_x[..], b"", "x read at server 1 is stale");
    // Serve y from the holder to realize the paper's exact interleaving:
    // c2's first read happens to reach the token holder (e.g. via
    // forwarding), the second is served by the stale local replica.
    let read_y_fwd = fs.read(n(0), y, 0, 64).unwrap().value;
    let read_x_stale = fs.read(n(1), x, 0, 64).unwrap().value;
    assert_eq!(&read_y_fwd[..], b"Y-DATA", "c2 observes y's append");
    assert_eq!(&read_x_stale[..], b"", "…then observes x empty: the violation");
}

#[test]
fn figure5_prevented_by_stability_notification() {
    let (mut fs, x, y) = setup(true);
    fs.write(n(0), x, 0, b"X-DATA").unwrap();
    fs.write(n(0), y, 0, b"Y-DATA").unwrap();
    // With stability notification, server 1's replicas are marked
    // unstable, so c2's reads are forwarded to the token holder: the
    // anomaly cannot occur no matter which server c2 uses.
    let read_y = fs.read(n(1), y, 0, 64).unwrap().value;
    let read_x = fs.read(n(1), x, 0, 64).unwrap().value;
    assert_eq!(&read_y[..], b"Y-DATA");
    assert_eq!(&read_x[..], b"X-DATA", "no torn prefix: global one-copy serializability");
}

#[test]
fn real_time_consistency_phone_call() {
    // §3.4's "real-time consistency": one user writes a file and calls a
    // friend; the friend observes the update within a bounded delay.
    let (mut fs, x, _) = setup(true);
    fs.write(n(0), x, 0, b"read my file!").unwrap();
    // The "phone call" takes a second.
    fs.cluster.advance(SimDuration::from_secs(1));
    let seen = fs.read(n(1), x, 0, 64).unwrap().value;
    assert_eq!(&seen[..], b"read my file!");
}

#[test]
fn stability_cost_is_per_stream_not_per_write() {
    // §3.4: "overhead is incurred at the beginning and end of a stream of
    // updates" — so a stream of writes pays one unstable round, not N.
    let (mut fs, x, _) = setup(true);
    fs.write(n(0), x, 0, b"w0").unwrap();
    let rounds_after_first = fs.cluster.stats.counter("core/stability/unstable_rounds");
    for i in 1..10 {
        fs.write(n(0), x, 0, format!("w{i}").as_bytes()).unwrap();
    }
    let rounds_after_stream = fs.cluster.stats.counter("core/stability/unstable_rounds");
    assert_eq!(
        rounds_after_first, rounds_after_stream,
        "no additional unstable rounds within the stream"
    );
    // After the quiet period the group stabilizes and a NEW stream pays
    // the round again.
    fs.cluster.run_until_quiet();
    fs.write(n(0), x, 0, b"new stream").unwrap();
    assert_eq!(fs.cluster.stats.counter("core/stability/unstable_rounds"), rounds_after_stream + 1);
}
