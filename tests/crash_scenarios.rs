//! The §3.6 crash scenarios driven through the full stack (NFS envelope
//! on top of the segment server), complementing the segment-level tests
//! in `deceit-core`.

use deceit::prelude::*;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

fn replicated_fs(servers: usize) -> DeceitFs {
    DeceitFs::new(
        servers,
        ClusterConfig::deterministic(),
        FsConfig {
            root_params: FileParams::important(servers.min(3)),
            dir_params: FileParams::important(servers.min(3)),
            ..FsConfig::default()
        },
    )
}

#[test]
fn file_survives_any_single_server_crash() {
    let mut fs = replicated_fs(3);
    let root = fs.root();
    let f = fs.create(n(0), root, "critical", 0o644).unwrap().value;
    fs.set_file_params(n(0), f.handle, FileParams::important(3)).unwrap();
    fs.write(n(0), f.handle, 0, b"must survive").unwrap();
    fs.cluster.run_until_quiet();
    for victim in [n(0), n(1), n(2)] {
        fs.cluster.crash_server(victim);
        let via = [n(0), n(1), n(2)].into_iter().find(|&s| s != victim).unwrap();
        let got = fs.read(via, f.handle, 0, 64).unwrap().value;
        assert_eq!(&got[..], b"must survive", "crash of {victim}");
        let listing = fs.readdir(via, root).unwrap().value;
        assert_eq!(listing.len(), 1, "namespace intact after {victim} crash");
        fs.cluster.recover_server(victim);
        fs.cluster.run_until_quiet();
    }
}

#[test]
fn directory_updates_survive_crash_recovery_cycle() {
    let mut fs = replicated_fs(3);
    let root = fs.root();
    // Create files while a replica holder of the root is down.
    fs.cluster.crash_server(n(2));
    fs.create(n(0), root, "made-during-outage", 0o644).unwrap();
    fs.cluster.run_until_quiet();
    fs.cluster.recover_server(n(2));
    fs.cluster.run_until_quiet();
    // The recovered server destroys its obsolete root replica, gets a
    // fresh one, and serves the new entry.
    let listing = fs.readdir(n(2), root).unwrap().value;
    assert!(listing.iter().any(|e| e.name == "made-during-outage"));
}

#[test]
fn namespace_conflict_from_partition_is_detected() {
    // Both sides create different files in the same directory during a
    // partition — the directory itself diverges (§5.2's hard problem).
    let mut fs = DeceitFs::new(
        4,
        ClusterConfig::deterministic(),
        FsConfig {
            root_params: FileParams {
                min_replicas: 4,
                availability: WriteAvailability::High,
                ..FileParams::default()
            },
            ..FsConfig::default()
        },
    );
    let root = fs.root();
    fs.cluster.run_until_quiet();
    fs.cluster.split(&[&[n(0), n(1)], &[n(2), n(3)]]);
    fs.create(n(0), root, "left.txt", 0o644).unwrap();
    fs.create(n(2), root, "right.txt", 0o644).unwrap();
    fs.cluster.heal();
    fs.cluster.run_until_quiet();
    // The directory has two incomparable versions, logged for the user
    // ("reconcile directory versions" is §2.1's special command).
    assert_eq!(fs.cluster.conflicts.len(), 1);
    assert_eq!(fs.cluster.conflicts[0].seg, root.segment());
    let versions = fs.file_versions(n(0), root).unwrap().value;
    assert_eq!(versions.len(), 2, "both directory versions preserved");
    // Each version shows its own side's file.
    let mut seen = Vec::new();
    for v in &versions {
        let pinned = FileHandle::versioned(root.segment(), v.major);
        let entries = fs.readdir(n(0), pinned).unwrap().value;
        seen.push(entries.iter().map(|e| e.name.clone()).collect::<Vec<_>>());
    }
    assert!(seen.iter().any(|names| names.contains(&"left.txt".to_string())));
    assert!(seen.iter().any(|names| names.contains(&"right.txt".to_string())));
}

#[test]
fn write_during_partition_blocked_at_medium_availability() {
    let mut fs = replicated_fs(3);
    let root = fs.root();
    let f = fs.create(n(0), root, "guarded", 0o644).unwrap().value;
    fs.set_file_params(n(0), f.handle, FileParams::important(3)).unwrap();
    fs.write(n(0), f.handle, 0, b"base").unwrap();
    fs.cluster.run_until_quiet();
    // Isolate the token holder; its side cannot write, the majority can.
    fs.cluster.split(&[&[n(0)], &[n(1), n(2)]]);
    assert!(fs.write(n(0), f.handle, 0, b"minority").is_err());
    fs.write(n(1), f.handle, 0, b"majority").unwrap();
    fs.cluster.heal();
    fs.cluster.run_until_quiet();
    // One lineage only; the majority's write won.
    assert!(fs.cluster.conflicts.is_empty());
    let got = fs.read(n(0), f.handle, 0, 64).unwrap().value;
    assert_eq!(&got[..], b"majority");
}

#[test]
fn agent_failover_during_crash_storm() {
    let fs = replicated_fs(3);
    let root = fs.root();
    let mut srv = NfsServer::new(fs);
    let mut agent = Agent::new(n(100), n(0), AgentConfig::default());
    let (f, _) = agent.create(&mut srv, root, "storm", 0o644).unwrap();
    if let Some(e) = agent
        .rpc(
            &mut srv,
            NfsRequest::DeceitSetParams { fh: f.handle, params: FileParams::important(3) },
        )
        .0
        .as_error()
    {
        panic!("setparams failed: {e}")
    }
    agent.write(&mut srv, f.handle, 0, b"v0").unwrap();
    srv.fs.cluster.run_until_quiet();

    // Crash whichever server the agent is on, four times in a row.
    for round in 0..4 {
        let dead = agent.server;
        srv.fs.cluster.crash_server(dead);
        srv.fs.cluster.advance(SimDuration::from_secs(5));
        let body = format!("v{}", round + 1).into_bytes();
        agent.write(&mut srv, f.handle, 0, &body).expect("write after failover");
        let (data, _) = agent.read_file(&mut srv, f.handle).unwrap();
        assert_eq!(data, bytes::Bytes::from(body));
        srv.fs.cluster.recover_server(dead);
        srv.fs.cluster.run_until_quiet();
    }
    assert!(agent.failovers >= 4);
}
