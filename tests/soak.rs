//! Soak test: a long randomized mixed workload with continuous crash,
//! partition, and heal churn — the whole stack must end consistent.

use deceit::prelude::*;
use deceit::sim::SimRng;

fn n(v: u32) -> NodeId {
    NodeId(v)
}

/// One seeded soak round: builds a tree, hammers it from every server
/// while injecting failures, then verifies full convergence.
fn soak(seed: u64) {
    let servers = 5;
    let mut fs = DeceitFs::new(
        servers,
        ClusterConfig::default().with_seed(seed).without_trace(),
        FsConfig {
            root_params: FileParams::important(3),
            dir_params: FileParams::important(3),
            ..FsConfig::default()
        },
    );
    let root = fs.root();
    let mut rng = SimRng::new(seed);

    // A small tree of replicated files.
    let mut files = Vec::new();
    let mut contents: Vec<Vec<u8>> = Vec::new();
    for i in 0..8 {
        let via = n((i % servers) as u32);
        let f = fs.create(via, root, &format!("soak{i}"), 0o644).unwrap().value;
        fs.set_file_params(via, f.handle, FileParams::important(2)).unwrap();
        let body = format!("init-{i}").into_bytes();
        fs.write(via, f.handle, 0, &body).unwrap();
        files.push(f.handle);
        contents.push(body);
    }
    fs.cluster.run_until_quiet();

    let mut down: Option<NodeId> = None;
    for step in 0..120 {
        // Failure churn every ~10 steps: crash one server or partition.
        if step % 10 == 3 {
            if let Some(d) = down.take() {
                fs.cluster.recover_server(d);
                fs.cluster.run_until_quiet();
            }
            let victim = n(rng.index(servers) as u32);
            fs.cluster.crash_server(victim);
            down = Some(victim);
        }
        let alive: Vec<NodeId> = (0..servers as u32).map(n).filter(|&s| Some(s) != down).collect();
        let via = alive[rng.index(alive.len())];
        let file_idx = rng.zipf(files.len(), 0.8);
        let fh = files[file_idx];
        match rng.index(10) {
            // Mostly reads and attribute checks (§2.3 op mix).
            0..=3 => {
                if let Ok(r) = fs.read(via, fh, 0, 1 << 16) {
                    // A read may be stale only within the propagation
                    // window; against a settled system it must be exact.
                    let want = &contents[file_idx];
                    let got = &r.value[..];
                    assert!(
                        got.is_empty()
                            || got.len() <= want.len() && &want[..got.len()] == got
                            || got == &want[..],
                        "read tore: got {:?} want {:?}",
                        String::from_utf8_lossy(got),
                        String::from_utf8_lossy(want)
                    );
                }
            }
            4..=6 => {
                let _ = fs.getattr(via, fh);
            }
            _ => {
                let body = format!("s{step}-f{file_idx}").into_bytes();
                if fs.write(via, fh, 0, &body).is_ok() {
                    // Writes replace a prefix; track the full expected
                    // contents (old tail survives shorter writes).
                    let mut next = contents[file_idx].clone();
                    if body.len() > next.len() {
                        next.resize(body.len(), 0);
                    }
                    next[..body.len()].copy_from_slice(&body);
                    contents[file_idx] = next;
                }
            }
        }
    }
    if let Some(d) = down {
        fs.cluster.recover_server(d);
    }
    fs.cluster.heal();
    fs.cluster.run_until_quiet();

    // Convergence: every file readable via every server with the exact
    // tracked contents; no unresolved conflicts (medium availability
    // never diverges); replica levels restored.
    assert!(fs.cluster.conflicts.is_empty());
    for (i, fh) in files.iter().enumerate() {
        for via in (0..servers as u32).map(n) {
            let got = fs.read(via, *fh, 0, 1 << 16).unwrap().value;
            assert_eq!(&got[..], &contents[i][..], "file {i} via {via} diverged (seed {seed})");
        }
        let holders = fs.file_replicas(n(0), *fh).unwrap().value;
        assert!(holders.len() >= 2, "file {i} under-replicated: {holders:?}");
    }
}

#[test]
fn soak_seed_1() {
    soak(1);
}

#[test]
fn soak_seed_2() {
    soak(2);
}

#[test]
fn soak_seed_3() {
    soak(3);
}

#[test]
fn soak_seed_4() {
    soak(0xDECE17);
}
